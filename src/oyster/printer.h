/**
 * @file
 * Pretty-printers for Oyster designs.
 *
 * Two formats are provided:
 *  - Oyster text: the concrete syntax of the Figure 5 grammar; used
 *    to measure sketch sizes in lines of Oyster code (Table 1).
 *  - PyRTL style: the Python-flavoured surface the paper shows for
 *    generated control logic (Figure 7); used for the examples and
 *    for generated-vs-reference LoC in Table 2.
 */

#ifndef OWL_OYSTER_PRINTER_H
#define OWL_OYSTER_PRINTER_H

#include <string>

#include "oyster/ir.h"

namespace owl::oyster
{

/** Render the design in Oyster concrete syntax. */
std::string printOyster(const Design &design);

/** Render the design in PyRTL-flavoured syntax. */
std::string printPyrtl(const Design &design);

/**
 * Render only the generated control logic (statements flagged
 * `generated`, plus the declarations they define) in PyRTL style —
 * the Figure 7 view.
 */
std::string printGeneratedControl(const Design &design);

/** Count non-empty lines in a rendered string. */
int countLines(const std::string &text);

/** Lines of Oyster code for a design (the Table 1 sketch size). */
int sketchSizeLoc(const Design &design);

/** Render one expression (used by both printers). */
std::string exprToString(const Design &design, ExprRef r);

} // namespace owl::oyster

#endif // OWL_OYSTER_PRINTER_H
