/**
 * @file
 * Parser for the Oyster concrete syntax emitted by printOyster().
 *
 * This gives the toolchain a file-based frontend: datapath sketches
 * can be written (or generated) as text and loaded for synthesis,
 * completing the "HDL in, HDL out" story of Figure 4. Round trips
 * with the printer are exact: parse(print(d)) prints identically.
 *
 * Grammar (lines; `#` starts a comment):
 *
 *   design <name>
 *   input <name> <width>
 *   output <name> <width>
 *   register <name> <width> [reset <w>'h<hex>]
 *   memory <name> <width> addr <awidth>
 *   rom <name> <width> addr <awidth> contents(<hex> <hex> ...)
 *   hole <name> <width> [deps(a, b, ...)]
 *   wire <name> <width>
 *   <target> := <expr>
 *   write <mem> <expr> <expr> <expr>
 *
 * Expressions use the printer's fully parenthesized form:
 *   <w>'h<hex> | ident | ~e | -e | (e OP e) | if e then e else e
 *   | e[h:l] | {e, e} | zext(e, w) | sext(e, w) | rol(e, e)
 *   | ror(e, e) | clmul(e, e) | clmulh(e, e) | read <mem> <expr>
 */

#ifndef OWL_OYSTER_PARSER_H
#define OWL_OYSTER_PARSER_H

#include <string>

#include "oyster/ir.h"

namespace owl::oyster
{

/** Parse a design from Oyster text. Throws FatalError on bad input. */
Design parseOyster(const std::string &text);

} // namespace owl::oyster

#endif // OWL_OYSTER_PARSER_H
