#include "oyster/builder.h"

#include "base/logging.h"

namespace owl::oyster
{

ExprRef
muxChain(Design &d, const std::vector<CondArm> &arms, ExprRef otherwise)
{
    ExprRef result = otherwise;
    for (auto it = arms.rbegin(); it != arms.rend(); ++it)
        result = d.opIte(it->first, it->second, result);
    return result;
}

ExprRef
orAll(Design &d, const std::vector<ExprRef> &xs)
{
    if (xs.empty())
        return d.lit(1, 0);
    ExprRef acc = xs[0];
    for (size_t i = 1; i < xs.size(); i++)
        acc = d.opOr(acc, xs[i]);
    return acc;
}

ExprRef
andAll(Design &d, const std::vector<ExprRef> &xs)
{
    if (xs.empty())
        return d.lit(1, 1);
    ExprRef acc = xs[0];
    for (size_t i = 1; i < xs.size(); i++)
        acc = d.opAnd(acc, xs[i]);
    return acc;
}

ExprRef
concatAll(Design &d, const std::vector<ExprRef> &parts)
{
    owl_assert(!parts.empty(), "concatAll needs at least one part");
    ExprRef acc = parts[0];
    for (size_t i = 1; i < parts.size(); i++)
        acc = d.opConcat(acc, parts[i]);
    return acc;
}

} // namespace owl::oyster
