/**
 * @file
 * Name -> CaseStudy factory registry for the built-in designs, shared
 * by the CLI (`owl <cmd> <design>`) and the serve subsystem (jobs
 * name designs by the same strings).
 */

#ifndef OWL_DESIGNS_REGISTRY_H
#define OWL_DESIGNS_REGISTRY_H

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "designs/case_study.h"

namespace owl::designs
{

using CaseStudyMaker = std::function<CaseStudy()>;

/** All built-in designs, keyed by CLI/serve name, sorted. */
const std::map<std::string, CaseStudyMaker> &caseStudyRegistry();

/** The registry's keys, sorted. */
std::vector<std::string> caseStudyNames();

/** Look up a maker; null for unknown names. */
const CaseStudyMaker *findCaseStudyMaker(const std::string &name);

/** Build a case study by name; nullopt for unknown names. */
std::optional<CaseStudy> makeCaseStudy(const std::string &name);

} // namespace owl::designs

#endif // OWL_DESIGNS_REGISTRY_H
