/**
 * @file
 * ILA specifications for the embedded-class RISC-V core (paper §4.1).
 *
 * RV32I base: 37 instructions (the full base set minus ecall, ebreak
 * and fence — the target cores implement neither exceptions nor
 * memory ordering, exactly as in the paper).
 *
 * Zbkb: 12 bit-manipulation instructions for cryptography — rol, ror,
 * rori, andn, orn, xnor, rev8, brev8 (rev.b), zip, unzip, pack, packh.
 *
 * Zbkc: clmul, clmulh (carry-less multiply).
 *
 * Architectural state: pc (32), GPR (32 x 32, with x0 hardwired to
 * zero in the usual store-old-value-on-rd==0 formulation), and a
 * unified word-addressed memory `mem` (30-bit address, 32-bit data)
 * covering both instructions and data; the abstraction function maps
 * it to the separate i_mem/d_mem blocks of the datapath sketches.
 */

#ifndef OWL_DESIGNS_RISCV_SPEC_H
#define OWL_DESIGNS_RISCV_SPEC_H

#include "ila/ila.h"

namespace owl::designs
{

/** Which ISA variant to build (extensions are cumulative). */
enum class RiscvVariant
{
    RV32I,       ///< base integer set (37 instructions)
    RV32I_Zbkb,  ///< base + 12 bit-manipulation instructions
    RV32I_Zbkc,  ///< base + Zbkb + clmul/clmulh
};

const char *riscvVariantName(RiscvVariant v);

/** Identifier-safe variant token (for design/module names). */
const char *riscvVariantToken(RiscvVariant v);

/** Number of instructions in a variant. */
int riscvVariantInstrCount(RiscvVariant v);

/** Build the ILA specification for a variant. */
ila::Ila makeRiscvSpec(RiscvVariant variant);

} // namespace owl::designs

#endif // OWL_DESIGNS_RISCV_SPEC_H
