#include "designs/alu_machine.h"

#include "oyster/builder.h"

namespace owl::designs
{

using namespace owl::ila;
using oyster::ExprRef;

namespace
{

Ila
makeSpec()
{
    // The §2.2 CreateAluIla listing, with four operations. op == 0 is
    // a NOP whose only condition is the register-file frame.
    Ila ila("alu_ila");
    auto op = ila.NewBvInput("op", 2);
    auto dest = ila.NewBvInput("dest", 2);
    auto src1 = ila.NewBvInput("src1", 2);
    auto src2 = ila.NewBvInput("src2", 2);
    auto regs = ila.NewMemState("regs", 2, 8);
    auto rs1_val = Load(regs, src1);
    auto rs2_val = Load(regs, src2);
    auto opc = [&](uint64_t v) { return BvConst(ila.ctx(), v, 2); };

    auto &NOP = ila.NewInstr("NOP");
    NOP.SetDecode(op == opc(0));

    auto &ADD = ila.NewInstr("ADD");
    ADD.SetDecode(op == opc(1));
    ADD.SetUpdate(regs, Store(regs, dest, rs1_val + rs2_val));

    auto &XOR = ila.NewInstr("XOR");
    XOR.SetDecode(op == opc(2));
    XOR.SetUpdate(regs, Store(regs, dest, rs1_val ^ rs2_val));

    auto &SUB = ila.NewInstr("SUB");
    SUB.SetDecode(op == opc(3));
    SUB.SetUpdate(regs, Store(regs, dest, rs1_val - rs2_val));

    return ila;
}

oyster::Design
makeSketch()
{
    // Figure 2: three stages. Stage 1 reads the register file and the
    // decoded fields; stage 2 runs the ALU; stage 3 writes back.
    // Control (alu_op selection and the write enable) is left as
    // holes, piped alongside the data.
    oyster::Design d("alu_machine");
    d.addInput("op", 2);
    d.addInput("dest", 2);
    d.addInput("src1", 2);
    d.addInput("src2", 2);
    d.addMemory("regfile", 2, 8);

    // Stage 1/2 pipeline registers.
    d.addRegister("a_reg", 8);
    d.addRegister("b_reg", 8);
    d.addRegister("dest1", 2);
    d.addRegister("aluop_reg", 2);
    d.addRegister("wen1", 1);
    // Stage 2/3 pipeline registers.
    d.addRegister("r_reg", 8);
    d.addRegister("dest2", 2);
    d.addRegister("wen2", 1);

    d.addHole("alu_op", 2, {"op"});
    d.addHole("reg_write", 1, {"op"});

    // Stage 1: register read + control decode.
    d.assign("a_reg", d.opRead("regfile", d.var("src1")));
    d.assign("b_reg", d.opRead("regfile", d.var("src2")));
    d.assign("dest1", d.var("dest"));
    d.assign("aluop_reg", d.var("alu_op"));
    d.assign("wen1", d.var("reg_write"));

    // Stage 2: ALU.
    ExprRef a = d.var("a_reg"), b = d.var("b_reg");
    ExprRef alu = muxChain(
        d,
        {{d.opEq(d.var("aluop_reg"), d.lit(2, aluADD)), d.opAdd(a, b)},
         {d.opEq(d.var("aluop_reg"), d.lit(2, aluXOR)), d.opXor(a, b)},
         {d.opEq(d.var("aluop_reg"), d.lit(2, aluAND)), d.opAnd(a, b)}},
        d.opSub(a, b));
    d.assign("r_reg", alu);
    d.assign("dest2", d.var("dest1"));
    d.assign("wen2", d.var("wen1"));

    // Stage 3: write back.
    d.memWrite("regfile", d.var("dest2"), d.var("r_reg"),
               d.var("wen2"));

    // The pipeline-empty assumption wire: with a universally
    // quantified initial state, in-flight garbage must be assumed
    // away, exactly like the crypto core's instruction_valid (§4.2).
    d.addWire("pipe_clear", 1);
    d.assign("pipe_clear",
             d.opAnd(d.opNot(d.var("wen1")), d.opNot(d.var("wen2"))));
    return d;
}

synth::AbsFunc
makeAlpha()
{
    // §3.2's example abstraction function for the three-stage ALU.
    synth::AbsFunc a;
    using synth::Effect;
    using synth::MapType;
    a.map("op", "op", MapType::Input, {{Effect::Read, 1}});
    a.map("src1", "src1", MapType::Input, {{Effect::Read, 1}});
    a.map("src2", "src2", MapType::Input, {{Effect::Read, 1}});
    a.map("dest", "dest", MapType::Input, {{Effect::Read, 1}});
    a.map("regs", "regfile", MapType::Memory,
          {{Effect::Read, 1}, {Effect::Write, 3}});
    a.withCycles(3);
    a.assume("pipe_clear", 1);
    return a;
}

} // namespace

CaseStudy
makeAluMachine()
{
    return CaseStudy(makeSpec(), makeSketch(), makeAlpha());
}

} // namespace owl::designs
