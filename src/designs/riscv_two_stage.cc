#include "designs/riscv_two_stage.h"

#include "designs/riscv_datapath.h"
#include "oyster/builder.h"

namespace owl::designs
{

using namespace rvdp;
using oyster::Design;
using oyster::ExprRef;

namespace
{

Design
makeSketch(RiscvVariant variant)
{
    Design d(std::string("riscv_two_stage_") +
             riscvVariantToken(variant));
    d.addRegister("pc", 32);
    d.addMemory("i_mem", 30, 32);
    d.addMemory("d_mem", 30, 32);
    d.addMemory("rf", 5, 32);

    // Stage 1/2 pipeline registers: data and piped control.
    d.addRegister("p_alu_out", 32);
    d.addRegister("p_store_data", 32);
    d.addRegister("p_rd", 5);
    d.addRegister("p_pc4", 32);
    d.addRegister("p_mem_read", 1);
    d.addRegister("p_mem_write", 1);
    d.addRegister("p_mask_mode", 2);
    d.addRegister("p_mem_sign_ext", 1);
    d.addRegister("p_reg_write", 1);
    d.addRegister("p_jump", 1);

    // ---- Stage 1: fetch, decode, execute, branch, pc update ----
    d.addWire("instruction", 32);
    d.assign("instruction",
             d.opRead("i_mem", d.opExtract(d.var("pc"), 31, 2)));
    DecodeFields f = decodeFields(d, d.var("instruction"));
    d.addWire("opcode", 7);
    d.assign("opcode", f.opcode);
    d.addWire("funct3", 3);
    d.assign("funct3", f.funct3);
    d.addWire("funct7", 7);
    d.assign("funct7", f.funct7);

    std::vector<std::string> deps = {"opcode", "funct3", "funct7"};
    d.addHole("imm_sel", 3, deps);
    d.addHole("alu_pc", 1, deps);
    d.addHole("alu_imm", 1, deps);
    d.addHole("alu_op", 5, deps);
    d.addHole("mem_read", 1, deps);
    d.addHole("mem_write", 1, deps);
    d.addHole("mask_mode", 2, deps);
    d.addHole("mem_sign_ext", 1, deps);
    d.addHole("reg_write", 1, deps);
    d.addHole("jump", 1, deps);
    d.addHole("jalr_sel", 1, deps);
    d.addHole("branch_en", 1, deps);
    d.addHole("branch_cmp", 2, deps);
    d.addHole("branch_neg", 1, deps);

    d.addWire("rs1_val", 32);
    d.assign("rs1_val", d.opRead("rf", f.rs1));
    d.addWire("rs2_val", 32);
    d.assign("rs2_val", d.opRead("rf", f.rs2));
    d.addWire("imm", 32);
    d.assign("imm", immediateMux(d, f, d.var("imm_sel")));
    d.addWire("alu_in1", 32);
    d.assign("alu_in1",
             d.opIte(d.var("alu_pc"), d.var("pc"), d.var("rs1_val")));
    d.addWire("alu_in2", 32);
    d.assign("alu_in2",
             d.opIte(d.var("alu_imm"), d.var("imm"), d.var("rs2_val")));
    d.addWire("alu_out", 32);
    d.assign("alu_out", alu(d, variant, d.var("alu_op"),
                            d.var("alu_in1"), d.var("alu_in2")));

    d.addWire("taken", 1);
    d.assign("taken",
             branchTaken(d, d.var("branch_en"), d.var("branch_cmp"),
                         d.var("branch_neg"), d.var("rs1_val"),
                         d.var("rs2_val")));
    d.addWire("pc4", 32);
    d.assign("pc4", d.opAdd(d.var("pc"), d.lit(32, 4)));
    d.addWire("target", 32);
    d.assign("target",
             d.opIte(d.var("jalr_sel"),
                     d.opAnd(d.opAdd(d.var("rs1_val"), f.imm_i),
                             d.lit(32, 0xfffffffe)),
                     d.opAdd(d.var("pc"), d.var("imm"))));
    d.assign("pc", d.opIte(d.opOr(d.var("jump"), d.var("taken")),
                           d.var("target"), d.var("pc4")));

    // Latch into stage 2.
    d.assign("p_alu_out", d.var("alu_out"));
    d.assign("p_store_data", d.var("rs2_val"));
    d.assign("p_rd", f.rd);
    d.assign("p_pc4", d.var("pc4"));
    d.assign("p_mem_read", d.var("mem_read"));
    d.assign("p_mem_write", d.var("mem_write"));
    d.assign("p_mask_mode", d.var("mask_mode"));
    d.assign("p_mem_sign_ext", d.var("mem_sign_ext"));
    d.assign("p_reg_write", d.var("reg_write"));
    d.assign("p_jump", d.var("jump"));

    // ---- Stage 2: memory access and write back ----
    d.addWire("mem_word_addr", 30);
    d.assign("mem_word_addr", d.opExtract(d.var("p_alu_out"), 31, 2));
    d.addWire("mem_offset", 2);
    d.assign("mem_offset", d.opExtract(d.var("p_alu_out"), 1, 0));
    d.addWire("mem_rdata", 32);
    d.assign("mem_rdata", d.opRead("d_mem", d.var("mem_word_addr")));
    d.addWire("loaded", 32);
    d.assign("loaded",
             loadValue(d, d.var("mem_rdata"), d.var("mem_offset"),
                       d.var("p_mask_mode"), d.var("p_mem_sign_ext")));
    d.addWire("store_word", 32);
    d.assign("store_word",
             storeMerge(d, d.var("mem_rdata"), d.var("p_store_data"),
                        d.var("mem_offset"), d.var("p_mask_mode")));
    d.memWrite("d_mem", d.var("mem_word_addr"), d.var("store_word"),
               d.var("p_mem_write"));

    d.addWire("wb", 32);
    d.assign("wb", d.opIte(d.var("p_mem_read"), d.var("loaded"),
                           d.opIte(d.var("p_jump"), d.var("p_pc4"),
                                   d.var("p_alu_out"))));
    d.memWrite("rf", d.var("p_rd"), d.var("wb"),
               d.opAnd(d.var("p_reg_write"),
                       d.opNe(d.var("p_rd"), d.lit(5, 0))));

    // Pipeline-empty assumption: the in-flight slot holds a bubble
    // when the analyzed instruction is fetched.
    d.addWire("pipe_clear", 1);
    d.assign("pipe_clear", d.opAnd(d.opNot(d.var("p_mem_write")),
                                   d.opNot(d.var("p_reg_write"))));
    return d;
}

synth::AbsFunc
makeAlpha()
{
    // §4.1.2: timing strengthened for the pipeline. pc resolves in
    // stage 1; the register file is read in stage 1 and written in
    // stage 2; data memory is accessed in stage 2.
    synth::AbsFunc a;
    using synth::Effect;
    using synth::MapType;
    a.map("pc", "pc", MapType::Register,
          {{Effect::Read, 1}, {Effect::Write, 1}});
    a.map("GPR", "rf", MapType::Memory,
          {{Effect::Read, 1}, {Effect::Write, 2}});
    a.map("mem", "d_mem", MapType::Memory,
          {{Effect::Read, 2}, {Effect::Write, 2}});
    a.mapFetch("mem", "i_mem", {{Effect::Read, 1}}, "instruction");
    a.withCycles(2);
    a.assume("pipe_clear", 1);
    return a;
}

} // namespace

CaseStudy
makeRiscvTwoStage(RiscvVariant variant)
{
    return CaseStudy(makeRiscvSpec(variant), makeSketch(variant),
                     makeAlpha());
}

} // namespace owl::designs
