#include "designs/riscv_reference_control.h"

#include "designs/riscv_datapath.h"
#include "oyster/builder.h"

namespace owl::designs
{

using namespace rvdp;
using oyster::Design;
using oyster::ExprRef;
using oyster::muxChain;

void
completeSingleCycleByHand(oyster::Design &d, RiscvVariant variant)
{
    bool zbkb = variant != RiscvVariant::RV32I;
    bool zbkc = variant == RiscvVariant::RV32I_Zbkc;
    auto ctl = [&](const std::string &name, ExprRef e) {
        d.convertHoleToWire(name);
        d.assign(name, e, /*generated=*/true);
    };
    auto opIs = [&](uint64_t v) {
        return d.opEq(d.var("opcode"), d.lit(7, v));
    };
    auto f3Is = [&](uint64_t v) {
        return d.opEq(d.var("funct3"), d.lit(3, v));
    };
    auto f7Is = [&](uint64_t v) {
        return d.opEq(d.var("funct7"), d.lit(7, v));
    };
    auto aop = [&](uint64_t v) { return d.lit(5, v); };

    // Opcode class wires.
    d.addWire("is_load", 1);
    d.assign("is_load", opIs(0x03), true);
    d.addWire("is_store", 1);
    d.assign("is_store", opIs(0x23), true);
    d.addWire("is_opimm", 1);
    d.assign("is_opimm", opIs(0x13), true);
    d.addWire("is_op", 1);
    d.assign("is_op", opIs(0x33), true);
    d.addWire("is_branch", 1);
    d.assign("is_branch", opIs(0x63), true);
    d.addWire("is_lui", 1);
    d.assign("is_lui", opIs(0x37), true);
    d.addWire("is_auipc", 1);
    d.assign("is_auipc", opIs(0x17), true);
    d.addWire("is_jal", 1);
    d.assign("is_jal", opIs(0x6f), true);
    d.addWire("is_jalr", 1);
    d.assign("is_jalr", opIs(0x67), true);
    d.addWire("imm12", 12);
    d.assign("imm12", d.opExtract(d.var("instruction"), 31, 20), true);

    ctl("imm_sel",
        muxChain(d,
                 {{d.var("is_store"), d.lit(3, immS)},
                  {d.var("is_branch"), d.lit(3, immB)},
                  {d.opOr(d.var("is_lui"), d.var("is_auipc")),
                   d.lit(3, immU)},
                  {d.var("is_jal"), d.lit(3, immJ)}},
                 d.lit(3, immI)));
    ctl("alu_pc", d.var("is_auipc"));
    ctl("alu_imm",
        d.opNot(d.opOr(d.var("is_op"), d.var("is_branch"))));

    // ALU function decode.
    ExprRef f3 = d.var("funct3");
    ExprRef base_r = muxChain(
        d,
        {{f3Is(0), d.opIte(f7Is(0x20), aop(aluSUB), aop(aluADD))},
         {f3Is(1), aop(aluSLL)},
         {f3Is(2), aop(aluSLT)},
         {f3Is(3), aop(aluSLTU)},
         {f3Is(4), aop(aluXOR)},
         {f3Is(5), d.opIte(f7Is(0x20), aop(aluSRA), aop(aluSRL))},
         {f3Is(6), aop(aluOR)}},
        aop(aluAND));
    ExprRef op_r = base_r;
    if (zbkb) {
        op_r = muxChain(
            d,
            {{f7Is(0x30), d.opIte(f3Is(1), aop(aluROL), aop(aluROR))},
             {d.opAnd(f7Is(0x20), f3Is(4)), aop(aluXNOR)},
             {d.opAnd(f7Is(0x20), f3Is(6)), aop(aluORN)},
             {d.opAnd(f7Is(0x20), f3Is(7)), aop(aluANDN)},
             {f7Is(0x04),
              d.opIte(f3Is(4), aop(aluPACK), aop(aluPACKH))}},
            base_r);
    }
    if (zbkc) {
        op_r = d.opIte(f7Is(0x05),
                       d.opIte(f3Is(1), aop(aluCLMUL), aop(aluCLMULH)),
                       op_r);
    }
    ExprRef shift_i =
        d.opIte(f7Is(0x20), aop(aluSRA), aop(aluSRL));
    if (zbkb) {
        auto imm12Is = [&](uint64_t v) {
            return d.opEq(d.var("imm12"), d.lit(12, v));
        };
        shift_i = muxChain(
            d,
            {{f7Is(0x00), aop(aluSRL)},
             {f7Is(0x20), aop(aluSRA)},
             {f7Is(0x30), aop(aluROR)},
             {imm12Is(0x698), aop(aluREV8)},
             {imm12Is(0x687), aop(aluBREV8)}},
            aop(aluUNZIP));
    }
    ExprRef slli_i = aop(aluSLL);
    if (zbkb)
        slli_i = d.opIte(f7Is(0x00), aop(aluSLL), aop(aluZIP));
    ExprRef op_i = muxChain(
        d,
        {{f3Is(0), aop(aluADD)},
         {f3Is(1), slli_i},
         {f3Is(2), aop(aluSLT)},
         {f3Is(3), aop(aluSLTU)},
         {f3Is(4), aop(aluXOR)},
         {f3Is(5), shift_i},
         {f3Is(6), aop(aluOR)}},
        aop(aluAND));
    ctl("alu_op", muxChain(d,
                           {{d.var("is_lui"), aop(aluCOPY2)},
                            {d.var("is_op"), op_r},
                            {d.var("is_opimm"), op_i}},
                           aop(aluADD)));

    ctl("mem_read", d.var("is_load"));
    ctl("mem_write", d.var("is_store"));
    ctl("mask_mode", d.opExtract(f3, 1, 0));
    ctl("mem_sign_ext", d.opNot(d.opExtract(f3, 2, 2)));
    ctl("reg_write",
        d.opNot(d.opOr(d.var("is_store"), d.var("is_branch"))));
    ctl("jump", d.opOr(d.var("is_jal"), d.var("is_jalr")));
    ctl("jalr_sel", d.var("is_jalr"));
    ctl("branch_en", d.var("is_branch"));
    ctl("branch_cmp",
        d.opIte(d.opNot(d.opExtract(f3, 2, 2)), d.lit(2, cmpEQ),
                d.opIte(d.opNot(d.opExtract(f3, 1, 1)), d.lit(2, cmpLT),
                        d.lit(2, cmpLTU))));
    ctl("branch_neg", d.opExtract(f3, 0, 0));

    d.sortStatements();
    d.validate(/*allow_holes=*/false);
}

} // namespace owl::designs
