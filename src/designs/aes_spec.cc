/**
 * @file
 * ILA specification for the AES-128 accelerator (paper §4.3). The
 * CipherUpdate/KeyUpdate functions are instantiated from the shared
 * round templates in aes_round.h; the S-box and round constants are
 * MemConst lookup tables, compiled to immutable constant tables
 * rather than uninterpreted functions (paper §5.1).
 */

#include "designs/aes_accelerator.h"
#include "designs/aes_round.h"
#include "designs/aes_tables.h"

namespace owl::designs
{

using namespace owl::ila;

namespace
{

/** aes_round.h builder over ILA expressions. */
struct IlaAesBuilder
{
    using Expr = IlaExpr;
    IlaContext &ctx;
    IlaExpr sboxMem;
    IlaExpr rconMem;

    Expr ext(Expr x, int h, int l) { return Extract(x, h, l); }
    Expr cat(Expr h, Expr l) { return Concat(h, l); }
    Expr x_(Expr a, Expr b) { return a ^ b; }
    Expr ite(Expr c, Expr t, Expr e) { return Ite(c, t, e); }
    Expr c(int w, uint64_t v) { return BvConst(ctx, v, w); }
    Expr shl1(Expr x) { return Shl(x, c(8, 1)); }
    Expr sbox(Expr i) { return Load(sboxMem, i); }
    Expr rcon(Expr i) { return Load(rconMem, i); }
};

} // namespace

ila::Ila
makeAesSpec()
{
    Ila ila("aes_ila");
    auto key_in = ila.NewBvInput("key_in", 128);
    auto plaintext = ila.NewBvInput("plaintext", 128);
    auto round = ila.NewBvState("round", 4);
    auto round_key = ila.NewBvState("round_key", 128);
    auto ciphertext = ila.NewBvState("ciphertext", 128);
    auto sbox = ila.NewMemConst("aes_sbox", 8, 8, aesSboxEntries());
    auto rcon = ila.NewMemConst("aes_rcon", 4, 8, aesRconEntries());
    auto bv = [&](uint64_t v, int w) { return BvConst(ila.ctx(), v, w); };

    IlaAesBuilder b{ila.ctx(), sbox, rcon};

    auto &first = ila.NewInstr("FirstRound");
    first.SetDecode(round == bv(0, 4));
    first.SetUpdate(ciphertext, plaintext ^ key_in);
    first.SetUpdate(round_key,
                    aes::keyExpand(b, key_in, bv(1, 4)));
    first.SetUpdate(round, bv(1, 4));

    auto &mid = ila.NewInstr("IntermediateRound");
    mid.SetDecode(round > bv(0, 4) && round < bv(10, 4));
    mid.SetUpdate(ciphertext,
                  aes::cipherUpdateMidRound(b, ciphertext, round_key));
    mid.SetUpdate(round_key,
                  aes::keyExpand(b, round_key, round + bv(1, 4)));
    mid.SetUpdate(round, round + bv(1, 4));

    auto &fin = ila.NewInstr("FinalRound");
    fin.SetDecode(round == bv(10, 4));
    fin.SetUpdate(ciphertext,
                  aes::cipherUpdateFinalRound(b, ciphertext,
                                              round_key));
    fin.SetUpdate(round, round + bv(1, 4));

    return ila;
}

} // namespace owl::designs
