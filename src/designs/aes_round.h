/**
 * @file
 * AES-128 round functions written once against a generic expression
 * builder, instantiated both for ILA expressions (the specification's
 * CipherUpdate/KeyUpdate functions, paper §4.3) and Oyster expressions
 * (the accelerator datapath sketch). Building both sides from the same
 * template keeps them structurally identical, which lets the symbolic
 * evaluator's hash-consing collapse the shared logic exactly as
 * Rosette's partial evaluation does in the paper's artifact.
 *
 * State layout: 128-bit value, byte i in bits [8i+7 : 8i], i = 4c + r
 * per FIPS-197 (column-major).
 *
 * Builder concept:
 *   using Expr = ...;
 *   Expr ext(Expr, int high, int low);
 *   Expr cat(Expr high, Expr low);
 *   Expr x_(Expr, Expr);              // xor
 *   Expr ite(Expr c, Expr t, Expr e);
 *   Expr c(int width, uint64_t v);    // constant
 *   Expr shl1(Expr byte);             // 8-bit shift left by one
 *   Expr sbox(Expr byte);             // S-box lookup
 *   Expr rcon(Expr idx4);             // round-constant lookup
 */

#ifndef OWL_DESIGNS_AES_ROUND_H
#define OWL_DESIGNS_AES_ROUND_H

#include <array>
#include <vector>

namespace owl::designs::aes
{

template <typename B>
using ExprOf = typename B::Expr;

/** Slice byte i (0..15) from a 128-bit state. */
template <typename B>
ExprOf<B>
stByte(B &b, ExprOf<B> st, int i)
{
    return b.ext(st, 8 * i + 7, 8 * i);
}

/** Assemble 16 bytes (index 0 lowest) into a 128-bit state. */
template <typename B>
ExprOf<B>
packBytes(B &b, const std::array<ExprOf<B>, 16> &bytes)
{
    ExprOf<B> acc = bytes[0];
    for (int i = 1; i < 16; i++)
        acc = b.cat(bytes[i], acc);
    return acc;
}

/** xtime: multiply a byte by x in GF(2^8). */
template <typename B>
ExprOf<B>
xtime(B &b, ExprOf<B> byte)
{
    auto shifted = b.shl1(byte);
    auto msb = b.ext(byte, 7, 7);
    return b.x_(shifted, b.ite(msb, b.c(8, 0x1b), b.c(8, 0x00)));
}

/** SubBytes over the full state. */
template <typename B>
ExprOf<B>
subBytes(B &b, ExprOf<B> st)
{
    std::array<ExprOf<B>, 16> out;
    for (int i = 0; i < 16; i++)
        out[i] = b.sbox(stByte(b, st, i));
    return packBytes(b, out);
}

/** ShiftRows: out[r + 4c] = in[r + 4((c + r) mod 4)]. */
template <typename B>
ExprOf<B>
shiftRows(B &b, ExprOf<B> st)
{
    std::array<ExprOf<B>, 16> out;
    for (int c = 0; c < 4; c++) {
        for (int r = 0; r < 4; r++)
            out[r + 4 * c] = stByte(b, st, r + 4 * ((c + r) % 4));
    }
    return packBytes(b, out);
}

/** MixColumns over the full state. */
template <typename B>
ExprOf<B>
mixColumns(B &b, ExprOf<B> st)
{
    std::array<ExprOf<B>, 16> out;
    for (int c = 0; c < 4; c++) {
        std::array<ExprOf<B>, 4> a;
        for (int r = 0; r < 4; r++)
            a[r] = stByte(b, st, 4 * c + r);
        auto xt = [&](int i) { return xtime(b, a[i]); };
        out[4 * c + 0] = b.x_(b.x_(xt(0), xt(1)),
                              b.x_(a[1], b.x_(a[2], a[3])));
        out[4 * c + 1] = b.x_(b.x_(a[0], xt(1)),
                              b.x_(xt(2), b.x_(a[2], a[3])));
        out[4 * c + 2] = b.x_(b.x_(a[0], a[1]),
                              b.x_(xt(2), b.x_(xt(3), a[3])));
        out[4 * c + 3] = b.x_(b.x_(xt(0), a[0]),
                              b.x_(a[1], b.x_(a[2], xt(3))));
    }
    return packBytes(b, out);
}

/** AddRoundKey: xor with the round key. */
template <typename B>
ExprOf<B>
addRoundKey(B &b, ExprOf<B> st, ExprOf<B> rk)
{
    return b.x_(st, rk);
}

/**
 * One key-expansion step: derive the round key for `rcon_idx` from
 * the previous one.
 */
template <typename B>
ExprOf<B>
keyExpand(B &b, ExprOf<B> rk, ExprOf<B> rcon_idx)
{
    // t = SubWord(RotWord(w3)) ^ (rcon, 0, 0, 0).
    std::array<ExprOf<B>, 4> t = {
        b.x_(b.sbox(stByte(b, rk, 13)), b.rcon(rcon_idx)),
        b.sbox(stByte(b, rk, 14)),
        b.sbox(stByte(b, rk, 15)),
        b.sbox(stByte(b, rk, 12)),
    };
    std::array<ExprOf<B>, 16> out;
    for (int i = 0; i < 4; i++)
        out[i] = b.x_(stByte(b, rk, i), t[i]);
    for (int w = 1; w < 4; w++) {
        for (int i = 0; i < 4; i++) {
            out[4 * w + i] =
                b.x_(stByte(b, rk, 4 * w + i), out[4 * (w - 1) + i]);
        }
    }
    return packBytes(b, out);
}

/** A full middle round: ARK(MC(SR(SB(st))), rk). */
template <typename B>
ExprOf<B>
cipherUpdateMidRound(B &b, ExprOf<B> st, ExprOf<B> rk)
{
    return addRoundKey(b, mixColumns(b, shiftRows(b, subBytes(b, st))),
                       rk);
}

/** The final round: ARK(SR(SB(st)), rk) — no MixColumns. */
template <typename B>
ExprOf<B>
cipherUpdateFinalRound(B &b, ExprOf<B> st, ExprOf<B> rk)
{
    return addRoundKey(b, shiftRows(b, subBytes(b, st)), rk);
}

} // namespace owl::designs::aes

#endif // OWL_DESIGNS_AES_ROUND_H
