#include "designs/riscv_spec.h"

#include "base/logging.h"

namespace owl::designs
{

using namespace owl::ila;

const char *
riscvVariantName(RiscvVariant v)
{
    switch (v) {
      case RiscvVariant::RV32I: return "RV32I";
      case RiscvVariant::RV32I_Zbkb: return "RV32I + Zbkb";
      case RiscvVariant::RV32I_Zbkc: return "RV32I + Zbkc";
    }
    return "?";
}

const char *
riscvVariantToken(RiscvVariant v)
{
    switch (v) {
      case RiscvVariant::RV32I: return "RV32I";
      case RiscvVariant::RV32I_Zbkb: return "RV32I_Zbkb";
      case RiscvVariant::RV32I_Zbkc: return "RV32I_Zbkc";
    }
    return "unknown";
}

int
riscvVariantInstrCount(RiscvVariant v)
{
    switch (v) {
      case RiscvVariant::RV32I: return 37;
      case RiscvVariant::RV32I_Zbkb: return 49;
      case RiscvVariant::RV32I_Zbkc: return 51;
    }
    return 0;
}

namespace
{

/** Major opcodes. */
constexpr uint64_t opLOAD = 0x03;
constexpr uint64_t opOPIMM = 0x13;
constexpr uint64_t opAUIPC = 0x17;
constexpr uint64_t opSTORE = 0x23;
constexpr uint64_t opOP = 0x33;
constexpr uint64_t opLUI = 0x37;
constexpr uint64_t opBRANCH = 0x63;
constexpr uint64_t opJALR = 0x67;
constexpr uint64_t opJAL = 0x6f;

/** Builder state shared by all instruction definitions. */
struct SpecBuilder
{
    Ila ila;
    IlaExpr pc, gpr, mem;
    IlaExpr inst, opcode, funct3, funct7, rd, rs1, rs2;
    IlaExpr imm_i, imm_s, imm_b, imm_u, imm_j;
    IlaExpr rs1_val, rs2_val, pc4;

    explicit SpecBuilder(const std::string &name) : ila(name)
    {
        pc = ila.NewBvState("pc", 32);
        gpr = ila.NewMemState("GPR", 5, 32);
        mem = ila.NewMemState("mem", 30, 32);
        inst = Load(mem, Extract(pc, 31, 2));
        ila.SetFetch(inst);

        opcode = Extract(inst, 6, 0);
        rd = Extract(inst, 11, 7);
        funct3 = Extract(inst, 14, 12);
        rs1 = Extract(inst, 19, 15);
        rs2 = Extract(inst, 24, 20);
        funct7 = Extract(inst, 31, 25);

        imm_i = SExt(Extract(inst, 31, 20), 32);
        imm_s = SExt(Concat(Extract(inst, 31, 25),
                            Extract(inst, 11, 7)),
                     32);
        imm_b = SExt(Concat(Concat(Extract(inst, 31, 31),
                                   Extract(inst, 7, 7)),
                            Concat(Extract(inst, 30, 25),
                                   Concat(Extract(inst, 11, 8),
                                          bv(0, 1)))),
                     32);
        imm_u = Concat(Extract(inst, 31, 12), bv(0, 12));
        imm_j = SExt(Concat(Concat(Extract(inst, 31, 31),
                                   Extract(inst, 19, 12)),
                            Concat(Extract(inst, 20, 20),
                                   Concat(Extract(inst, 30, 21),
                                          bv(0, 1)))),
                     32);

        rs1_val = Load(gpr, rs1);
        rs2_val = Load(gpr, rs2);
        pc4 = pc + bv(4, 32);
    }

    IlaExpr bv(uint64_t v, int w) { return BvConst(ila.ctx(), v, w); }

    /** Store to rd, preserving old value when rd == x0. */
    IlaExpr
    writeRd(const IlaExpr &val)
    {
        return Store(gpr, rd,
                     Ite(rd == bv(0, 5), Load(gpr, rd), val));
    }

    IlaExpr
    decR(uint64_t f7, uint64_t f3)
    {
        return opcode == bv(opOP, 7) && funct3 == bv(f3, 3) &&
               funct7 == bv(f7, 7);
    }

    IlaExpr
    decI(uint64_t opc, uint64_t f3)
    {
        return opcode == bv(opc, 7) && funct3 == bv(f3, 3);
    }

    /** OP-IMM decode that also pins the full 12-bit immediate. */
    IlaExpr
    decImm12(uint64_t f3, uint64_t imm12)
    {
        return decI(opOPIMM, f3) &&
               Extract(inst, 31, 20) == bv(imm12, 12);
    }

    /** Register-register op writing rd and advancing pc. */
    void
    aluR(const std::string &name, uint64_t f7, uint64_t f3,
         const IlaExpr &val)
    {
        auto &i = ila.NewInstr(name);
        i.SetDecode(decR(f7, f3));
        i.SetUpdate(gpr, writeRd(val));
        i.SetUpdate(pc, pc4);
    }

    /** Immediate op writing rd and advancing pc. */
    void
    aluI(const std::string &name, uint64_t f3, const IlaExpr &val)
    {
        auto &i = ila.NewInstr(name);
        i.SetDecode(decI(opOPIMM, f3));
        i.SetUpdate(gpr, writeRd(val));
        i.SetUpdate(pc, pc4);
    }

    /** Shift-immediate style op with funct7 discrimination. */
    void
    shiftI(const std::string &name, uint64_t f7, uint64_t f3,
           const IlaExpr &val)
    {
        auto &i = ila.NewInstr(name);
        i.SetDecode(decI(opOPIMM, f3) && funct7 == bv(f7, 7));
        i.SetUpdate(gpr, writeRd(val));
        i.SetUpdate(pc, pc4);
    }

    void
    branch(const std::string &name, uint64_t f3, const IlaExpr &taken)
    {
        auto &i = ila.NewInstr(name);
        i.SetDecode(decI(opBRANCH, f3));
        i.SetUpdate(pc, Ite(taken, pc + imm_b, pc4));
    }

    /** The canonical load path shared with the datapath sketch. */
    IlaExpr
    loadShifted()
    {
        IlaExpr addr = rs1_val + imm_i;
        IlaExpr word = Load(mem, Extract(addr, 31, 2));
        IlaExpr off5 = Concat(Extract(addr, 1, 0), bv(0, 3));
        return Lshr(word, ZExt(off5, 32));
    }

    void
    load(const std::string &name, uint64_t f3, const IlaExpr &val)
    {
        auto &i = ila.NewInstr(name);
        i.SetDecode(decI(opLOAD, f3));
        i.SetUpdate(gpr, writeRd(val));
        i.SetUpdate(pc, pc4);
    }

    /** Read-modify-write store of the masked field. */
    void
    store(const std::string &name, uint64_t f3, uint64_t mask)
    {
        auto &i = ila.NewInstr(name);
        i.SetDecode(decI(opSTORE, f3));
        IlaExpr addr = rs1_val + imm_s;
        IlaExpr waddr = Extract(addr, 31, 2);
        IlaExpr off5 = ZExt(Concat(Extract(addr, 1, 0), bv(0, 3)), 32);
        IlaExpr old = Load(mem, waddr);
        IlaExpr m = bv(mask, 32);
        IlaExpr kept = old & !Shl(m, off5);
        IlaExpr field = Shl(rs2_val & m, off5);
        i.SetUpdate(mem, Store(mem, waddr, kept | field));
        i.SetUpdate(pc, pc4);
    }

    /** Zbkb bit permutations, written identically in the sketch. */
    IlaExpr
    rev8(const IlaExpr &x)
    {
        return Concat(Extract(x, 7, 0),
                      Concat(Extract(x, 15, 8),
                             Concat(Extract(x, 23, 16),
                                    Extract(x, 31, 24))));
    }

    IlaExpr
    brev8(const IlaExpr &x)
    {
        IlaExpr out = Extract(x, 0, 0);
        // Build {b0[0..7], b1[0..7], ...}: reverse bits within bytes.
        for (int byte = 0; byte < 4; byte++) {
            for (int bit = 0; bit < 8; bit++) {
                int src = byte * 8 + bit;
                int dst = byte * 8 + (7 - bit);
                if (byte == 0 && bit == 0)
                    out = Extract(x, dst, dst);
                else
                    out = Concat(Extract(x, dst, dst), out);
                (void)src;
            }
        }
        return out;
    }

    IlaExpr
    zip(const IlaExpr &x)
    {
        // rd[2i] = rs1[i], rd[2i+1] = rs1[i+16]; build msb-first.
        IlaExpr out = Extract(x, 0, 0);
        for (int i = 0; i < 32; i++) {
            int src = (i % 2 == 0) ? i / 2 : i / 2 + 16;
            if (i == 0)
                out = Extract(x, src, src);
            else
                out = Concat(Extract(x, src, src), out);
        }
        return out;
    }

    IlaExpr
    unzip(const IlaExpr &x)
    {
        // rd[i] = rs1[2i] (i<16), rd[16+i] = rs1[2i+1].
        IlaExpr out = Extract(x, 0, 0);
        for (int i = 0; i < 32; i++) {
            int src = (i < 16) ? 2 * i : 2 * (i - 16) + 1;
            if (i == 0)
                out = Extract(x, src, src);
            else
                out = Concat(Extract(x, src, src), out);
        }
        return out;
    }
};

void
addBase(SpecBuilder &b)
{
    auto bv = [&](uint64_t v, int w) { return b.bv(v, w); };
    Ila &ila = b.ila;

    // ---- U-type / jumps ----
    auto &lui = ila.NewInstr("LUI");
    lui.SetDecode(b.opcode == bv(opLUI, 7));
    lui.SetUpdate(b.gpr, b.writeRd(b.imm_u));
    lui.SetUpdate(b.pc, b.pc4);

    auto &auipc = ila.NewInstr("AUIPC");
    auipc.SetDecode(b.opcode == bv(opAUIPC, 7));
    auipc.SetUpdate(b.gpr, b.writeRd(b.pc + b.imm_u));
    auipc.SetUpdate(b.pc, b.pc4);

    auto &jal = ila.NewInstr("JAL");
    jal.SetDecode(b.opcode == bv(opJAL, 7));
    jal.SetUpdate(b.gpr, b.writeRd(b.pc4));
    jal.SetUpdate(b.pc, b.pc + b.imm_j);

    auto &jalr = ila.NewInstr("JALR");
    jalr.SetDecode(b.decI(opJALR, 0));
    jalr.SetUpdate(b.gpr, b.writeRd(b.pc4));
    jalr.SetUpdate(b.pc,
                   (b.rs1_val + b.imm_i) & bv(0xfffffffe, 32));

    // ---- branches ----
    b.branch("BEQ", 0, b.rs1_val == b.rs2_val);
    b.branch("BNE", 1, b.rs1_val != b.rs2_val);
    b.branch("BLT", 4, Slt(b.rs1_val, b.rs2_val));
    b.branch("BGE", 5, !Slt(b.rs1_val, b.rs2_val));
    b.branch("BLTU", 6, b.rs1_val < b.rs2_val);
    b.branch("BGEU", 7, !(b.rs1_val < b.rs2_val));

    // ---- loads ----
    IlaExpr lsh = b.loadShifted();
    b.load("LB", 0, SExt(Extract(lsh, 7, 0), 32));
    b.load("LH", 1, SExt(Extract(lsh, 15, 0), 32));
    b.load("LW", 2, lsh);
    b.load("LBU", 4, ZExt(Extract(lsh, 7, 0), 32));
    b.load("LHU", 5, ZExt(Extract(lsh, 15, 0), 32));

    // ---- stores ----
    b.store("SB", 0, 0xff);
    b.store("SH", 1, 0xffff);
    b.store("SW", 2, 0xffffffff);

    // ---- OP-IMM ----
    IlaExpr shamt = ZExt(Extract(b.inst, 24, 20), 32);
    b.aluI("ADDI", 0, b.rs1_val + b.imm_i);
    b.aluI("SLTI", 2,
           ZExt(Slt(b.rs1_val, b.imm_i), 32));
    b.aluI("SLTIU", 3, ZExt(b.rs1_val < b.imm_i, 32));
    b.aluI("XORI", 4, b.rs1_val ^ b.imm_i);
    b.aluI("ORI", 6, b.rs1_val | b.imm_i);
    b.aluI("ANDI", 7, b.rs1_val & b.imm_i);
    b.shiftI("SLLI", 0x00, 1, Shl(b.rs1_val, shamt));
    b.shiftI("SRLI", 0x00, 5, Lshr(b.rs1_val, shamt));
    b.shiftI("SRAI", 0x20, 5, Ashr(b.rs1_val, shamt));

    // ---- OP ----
    IlaExpr sh5 = ZExt(Extract(b.rs2_val, 4, 0), 32);
    b.aluR("ADD", 0x00, 0, b.rs1_val + b.rs2_val);
    b.aluR("SUB", 0x20, 0, b.rs1_val - b.rs2_val);
    b.aluR("SLL", 0x00, 1, Shl(b.rs1_val, sh5));
    b.aluR("SLT", 0x00, 2,
           ZExt(Slt(b.rs1_val, b.rs2_val), 32));
    b.aluR("SLTU", 0x00, 3, ZExt(b.rs1_val < b.rs2_val, 32));
    b.aluR("XOR", 0x00, 4, b.rs1_val ^ b.rs2_val);
    b.aluR("SRL", 0x00, 5, Lshr(b.rs1_val, sh5));
    b.aluR("SRA", 0x20, 5, Ashr(b.rs1_val, sh5));
    b.aluR("OR", 0x00, 6, b.rs1_val | b.rs2_val);
    b.aluR("AND", 0x00, 7, b.rs1_val & b.rs2_val);
}

void
addZbkb(SpecBuilder &b)
{
    Ila &ila = b.ila;
    IlaExpr sh5 = ZExt(Extract(b.rs2_val, 4, 0), 32);
    IlaExpr shamt = ZExt(Extract(b.inst, 24, 20), 32);

    b.aluR("ROL", 0x30, 1, Rol(b.rs1_val, sh5));
    b.aluR("ROR", 0x30, 5, Ror(b.rs1_val, sh5));
    b.shiftI("RORI", 0x30, 5, Ror(b.rs1_val, shamt));
    b.aluR("ANDN", 0x20, 7, b.rs1_val & !b.rs2_val);
    b.aluR("ORN", 0x20, 6, b.rs1_val | !b.rs2_val);
    b.aluR("XNOR", 0x20, 4, !(b.rs1_val ^ b.rs2_val));
    b.aluR("PACK", 0x04, 4,
           Concat(Extract(b.rs2_val, 15, 0),
                  Extract(b.rs1_val, 15, 0)));
    b.aluR("PACKH", 0x04, 7,
           ZExt(Concat(Extract(b.rs2_val, 7, 0),
                       Extract(b.rs1_val, 7, 0)),
                32));

    auto imm12Instr = [&](const std::string &name, uint64_t f3,
                          uint64_t imm12, const IlaExpr &val) {
        auto &i = ila.NewInstr(name);
        i.SetDecode(b.decImm12(f3, imm12));
        i.SetUpdate(b.gpr, b.writeRd(val));
        i.SetUpdate(b.pc, b.pc4);
    };
    imm12Instr("REV8", 5, 0x698, b.rev8(b.rs1_val));
    imm12Instr("BREV8", 5, 0x687, b.brev8(b.rs1_val));
    imm12Instr("ZIP", 1, 0x08f, b.zip(b.rs1_val));
    imm12Instr("UNZIP", 5, 0x08f, b.unzip(b.rs1_val));
}

void
addZbkc(SpecBuilder &b)
{
    b.aluR("CLMUL", 0x05, 1, Clmul(b.rs1_val, b.rs2_val));
    b.aluR("CLMULH", 0x05, 3, Clmulh(b.rs1_val, b.rs2_val));
}

} // namespace

ila::Ila
makeRiscvSpec(RiscvVariant variant)
{
    SpecBuilder b(std::string("riscv_") + riscvVariantToken(variant));
    addBase(b);
    if (variant == RiscvVariant::RV32I_Zbkb ||
        variant == RiscvVariant::RV32I_Zbkc) {
        addZbkb(b);
    }
    if (variant == RiscvVariant::RV32I_Zbkc)
        addZbkc(b);
    owl_assert(static_cast<int>(b.ila.instrs().size()) ==
               riscvVariantInstrCount(variant),
               "instruction count mismatch");
    return std::move(b.ila);
}

} // namespace owl::designs
