#include "designs/registry.h"

#include "designs/accumulator.h"
#include "designs/aes_accelerator.h"
#include "designs/alu_machine.h"
#include "designs/crypto_core.h"
#include "designs/riscv_single_cycle.h"
#include "designs/riscv_two_stage.h"

namespace owl::designs
{

const std::map<std::string, CaseStudyMaker> &
caseStudyRegistry()
{
    static const std::map<std::string, CaseStudyMaker> r = {
        {"accumulator", [] { return makeAccumulator(); }},
        {"alu-machine", [] { return makeAluMachine(); }},
        {"rv32i",
         [] { return makeRiscvSingleCycle(RiscvVariant::RV32I); }},
        {"rv32i-zbkb",
         [] {
             return makeRiscvSingleCycle(RiscvVariant::RV32I_Zbkb);
         }},
        {"rv32i-zbkc",
         [] {
             return makeRiscvSingleCycle(RiscvVariant::RV32I_Zbkc);
         }},
        {"rv32i-2stage",
         [] { return makeRiscvTwoStage(RiscvVariant::RV32I); }},
        {"rv32i-zbkb-2stage",
         [] { return makeRiscvTwoStage(RiscvVariant::RV32I_Zbkb); }},
        {"rv32i-zbkc-2stage",
         [] { return makeRiscvTwoStage(RiscvVariant::RV32I_Zbkc); }},
        {"crypto-core", [] { return makeCryptoCore(); }},
        {"aes", [] { return makeAesAccelerator(); }},
    };
    return r;
}

std::vector<std::string>
caseStudyNames()
{
    std::vector<std::string> names;
    for (const auto &[name, maker] : caseStudyRegistry())
        names.push_back(name);
    return names;
}

const CaseStudyMaker *
findCaseStudyMaker(const std::string &name)
{
    const auto &r = caseStudyRegistry();
    auto it = r.find(name);
    return it == r.end() ? nullptr : &it->second;
}

std::optional<CaseStudy>
makeCaseStudy(const std::string &name)
{
    const CaseStudyMaker *maker = findCaseStudyMaker(name);
    if (!maker)
        return std::nullopt;
    return (*maker)();
}

} // namespace owl::designs
