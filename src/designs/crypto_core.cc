#include "designs/crypto_core.h"

#include "designs/riscv_datapath.h"
#include "oyster/builder.h"

namespace owl::designs
{

using namespace owl::ila;
using namespace rvdp;
using oyster::Design;
using oyster::ExprRef;

namespace
{

Ila
makeSpec()
{
    Ila ila("crypto_core_ila");
    auto pc = ila.NewBvState("pc", 32);
    auto gpr = ila.NewMemState("GPR", 5, 32);
    auto mem = ila.NewMemState("mem", 30, 32);
    auto bv = [&](uint64_t v, int w) { return BvConst(ila.ctx(), v, w); };

    auto inst = Load(mem, Extract(pc, 31, 2));
    ila.SetFetch(inst);
    auto opcode = Extract(inst, 6, 0);
    auto rd = Extract(inst, 11, 7);
    auto funct3 = Extract(inst, 14, 12);
    auto rs1 = Extract(inst, 19, 15);
    auto rs2 = Extract(inst, 24, 20);
    auto funct7 = Extract(inst, 31, 25);
    auto imm_i = SExt(Extract(inst, 31, 20), 32);
    auto imm_s = SExt(
        Concat(Extract(inst, 31, 25), Extract(inst, 11, 7)), 32);
    auto imm_u = Concat(Extract(inst, 31, 12), bv(0, 12));
    auto imm_j = SExt(
        Concat(Concat(Extract(inst, 31, 31), Extract(inst, 19, 12)),
               Concat(Extract(inst, 20, 20),
                      Concat(Extract(inst, 30, 21), bv(0, 1)))),
        32);
    auto rs1_val = Load(gpr, rs1);
    auto rs2_val = Load(gpr, rs2);
    auto pc4 = pc + bv(4, 32);
    auto writeRd = [&](const IlaExpr &val) {
        return Store(gpr, rd, Ite(rd == bv(0, 5), Load(gpr, rd), val));
    };
    auto aluI = [&](const std::string &name, uint64_t f3,
                    const IlaExpr &val) {
        auto &i = ila.NewInstr(name);
        i.SetDecode(opcode == bv(0x13, 7) && funct3 == bv(f3, 3));
        i.SetUpdate(gpr, writeRd(val));
        i.SetUpdate(pc, pc4);
    };
    auto shiftI = [&](const std::string &name, uint64_t f7, uint64_t f3,
                      const IlaExpr &val) {
        auto &i = ila.NewInstr(name);
        i.SetDecode(opcode == bv(0x13, 7) && funct3 == bv(f3, 3) &&
                    funct7 == bv(f7, 7));
        i.SetUpdate(gpr, writeRd(val));
        i.SetUpdate(pc, pc4);
    };
    auto aluR = [&](const std::string &name, uint64_t opc, uint64_t f7,
                    uint64_t f3, const IlaExpr &val) {
        auto &i = ila.NewInstr(name);
        i.SetDecode(opcode == bv(opc, 7) && funct3 == bv(f3, 3) &&
                    funct7 == bv(f7, 7));
        i.SetUpdate(gpr, writeRd(val));
        i.SetUpdate(pc, pc4);
    };

    auto &lui = ila.NewInstr("LUI");
    lui.SetDecode(opcode == bv(0x37, 7));
    lui.SetUpdate(gpr, writeRd(imm_u));
    lui.SetUpdate(pc, pc4);

    auto &jal = ila.NewInstr("JAL");
    jal.SetDecode(opcode == bv(0x6f, 7));
    jal.SetUpdate(gpr, writeRd(pc4));
    jal.SetUpdate(pc, pc + imm_j);

    // Word-only loads/stores (the SHA workload is word-aligned).
    auto &lw = ila.NewInstr("LW");
    lw.SetDecode(opcode == bv(0x03, 7) && funct3 == bv(2, 3));
    lw.SetUpdate(gpr,
                 writeRd(Load(mem, Extract(rs1_val + imm_i, 31, 2))));
    lw.SetUpdate(pc, pc4);

    auto &sw = ila.NewInstr("SW");
    sw.SetDecode(opcode == bv(0x23, 7) && funct3 == bv(2, 3));
    sw.SetUpdate(mem, Store(mem, Extract(rs1_val + imm_s, 31, 2),
                            rs2_val));
    sw.SetUpdate(pc, pc4);

    IlaExpr shamt = ZExt(Extract(inst, 24, 20), 32);
    aluI("ADDI", 0, rs1_val + imm_i);
    aluI("XORI", 4, rs1_val ^ imm_i);
    aluI("ORI", 6, rs1_val | imm_i);
    aluI("ANDI", 7, rs1_val & imm_i);
    shiftI("SLLI", 0x00, 1, Shl(rs1_val, shamt));
    shiftI("SRLI", 0x00, 5, Lshr(rs1_val, shamt));
    shiftI("RORI", 0x30, 5, Ror(rs1_val, shamt));
    aluR("ADD", 0x33, 0x00, 0, rs1_val + rs2_val);
    aluR("SUB", 0x33, 0x20, 0, rs1_val - rs2_val);
    aluR("XOR", 0x33, 0x00, 4, rs1_val ^ rs2_val);
    aluR("OR", 0x33, 0x00, 6, rs1_val | rs2_val);
    aluR("AND", 0x33, 0x00, 7, rs1_val & rs2_val);
    // Custom conditional move: rd := (rs1 != 0) ? rs2 : rd.
    aluR("CMOV", 0x0b, 0x00, 0,
         Ite(rs1_val != bv(0, 32), rs2_val, Load(gpr, rd)));

    return ila;
}

Design
makeSketch()
{
    // Three stages: IF | ID+EX | MEM+WB. Zbkb-capable ALU for RORI.
    const RiscvVariant alu_variant = RiscvVariant::RV32I_Zbkb;
    Design d("crypto_core");
    d.addRegister("pc", 32);    // architectural pc (retire view)
    d.addRegister("f_pc", 32);  // speculating fetch pc
    d.addMemory("i_mem", 30, 32);
    d.addMemory("d_mem", 30, 32);
    d.addMemory("rf", 5, 32);

    // IF/EX pipeline registers.
    d.addRegister("p1_inst", 32);
    d.addRegister("p1_pc", 32);
    d.addRegister("p1_v", 1);
    // EX/MEM pipeline registers.
    d.addRegister("p2_wbval", 32);
    d.addRegister("p2_alu", 32);
    d.addRegister("p2_store", 32);
    d.addRegister("p2_rd", 5);
    d.addRegister("p2_mem_read", 1);
    d.addRegister("p2_mem_write", 1);
    d.addRegister("p2_reg_write", 1);

    // ---- Stage 2 decode (the control point of this core) ----
    d.addWire("inst2", 32);
    d.assign("inst2", d.var("p1_inst"));
    DecodeFields f = decodeFields(d, d.var("inst2"));
    d.addWire("opcode", 7);
    d.assign("opcode", f.opcode);
    d.addWire("funct3", 3);
    d.assign("funct3", f.funct3);
    d.addWire("funct7", 7);
    d.assign("funct7", f.funct7);

    std::vector<std::string> deps = {"opcode", "funct3", "funct7"};
    d.addHole("imm_sel", 3, deps);
    d.addHole("alu_imm", 1, deps);
    d.addHole("alu_op", 5, deps);
    d.addHole("cmov_sel", 1, deps);
    d.addHole("mem_read", 1, deps);
    d.addHole("mem_write", 1, deps);
    d.addHole("reg_write", 1, deps);
    d.addHole("jump", 1, deps);

    d.addWire("rs1_val", 32);
    d.assign("rs1_val", d.opRead("rf", f.rs1));
    d.addWire("rs2_val", 32);
    d.assign("rs2_val", d.opRead("rf", f.rs2));
    d.addWire("rd_val", 32);
    d.assign("rd_val", d.opRead("rf", f.rd));

    d.addWire("imm", 32);
    d.assign("imm", immediateMux(d, f, d.var("imm_sel")));
    d.addWire("alu_in2", 32);
    d.assign("alu_in2",
             d.opIte(d.var("alu_imm"), d.var("imm"), d.var("rs2_val")));
    d.addWire("alu_out", 32);
    d.assign("alu_out", alu(d, alu_variant, d.var("alu_op"),
                            d.var("rs1_val"), d.var("alu_in2")));
    d.addWire("cmov_res", 32);
    d.assign("cmov_res",
             d.opIte(d.opNe(d.var("rs1_val"), d.lit(32, 0)),
                     d.var("rs2_val"), d.var("rd_val")));

    // pc resolution in stage 2; taken jumps squash the wrong-path
    // instruction currently in stage 1.
    d.addWire("pc4_2", 32);
    d.assign("pc4_2", d.opAdd(d.var("p1_pc"), d.lit(32, 4)));
    d.addWire("jump_target", 32);
    d.assign("jump_target", d.opAdd(d.var("p1_pc"), d.var("imm")));
    d.addWire("squash", 1);
    d.assign("squash", d.opAnd(d.var("p1_v"), d.var("jump")));
    d.assign("pc", d.opIte(d.var("p1_v"),
                           d.opIte(d.var("jump"), d.var("jump_target"),
                                   d.var("pc4_2")),
                           d.var("pc")));
    d.assign("f_pc", d.opIte(d.var("squash"), d.var("jump_target"),
                             d.opAdd(d.var("f_pc"), d.lit(32, 4))));

    // ---- Stage 1 fetch (latches into p1_*) ----
    d.addWire("instruction", 32);
    d.assign("instruction",
             d.opRead("i_mem", d.opExtract(d.var("f_pc"), 31, 2)));
    d.assign("p1_inst", d.var("instruction"));
    d.assign("p1_pc", d.var("f_pc"));
    d.assign("p1_v", d.opNot(d.var("squash")));

    // ---- EX/MEM latch ----
    d.assign("p2_wbval",
             d.opIte(d.var("jump"), d.var("pc4_2"),
                     d.opIte(d.var("cmov_sel"), d.var("cmov_res"),
                             d.var("alu_out"))));
    d.assign("p2_alu", d.var("alu_out"));
    d.assign("p2_store", d.var("rs2_val"));
    d.assign("p2_rd", f.rd);
    d.assign("p2_mem_read", d.var("mem_read"));
    d.assign("p2_mem_write",
             d.opAnd(d.var("mem_write"), d.var("p1_v")));
    d.assign("p2_reg_write",
             d.opAnd(d.var("reg_write"), d.var("p1_v")));

    // ---- Stage 3: memory + write back ----
    d.addWire("mem_word_addr", 30);
    d.assign("mem_word_addr", d.opExtract(d.var("p2_alu"), 31, 2));
    d.addWire("mem_rdata", 32);
    d.assign("mem_rdata", d.opRead("d_mem", d.var("mem_word_addr")));
    d.memWrite("d_mem", d.var("mem_word_addr"), d.var("p2_store"),
               d.var("p2_mem_write"));
    d.addWire("wb", 32);
    d.assign("wb", d.opIte(d.var("p2_mem_read"), d.var("mem_rdata"),
                           d.var("p2_wbval")));
    d.memWrite("rf", d.var("p2_rd"), d.var("wb"),
               d.opAnd(d.var("p2_reg_write"),
                       d.opNe(d.var("p2_rd"), d.lit(5, 0))));

    // Assumption wires: together these are the `instruction_valid`
    // story of §4.2 — the analyzed instruction is fetched into an
    // empty, synchronized pipeline and is not going to be flushed.
    d.addWire("instruction_valid", 1);
    d.assign("instruction_valid", d.opNot(d.var("squash")));
    d.addWire("stage1_bubble", 1);
    d.assign("stage1_bubble", d.opNot(d.var("p1_v")));
    d.addWire("stage2_bubble", 1);
    d.assign("stage2_bubble",
             d.opAnd(d.opNot(d.var("p2_mem_write")),
                     d.opNot(d.var("p2_reg_write"))));
    d.addWire("fetch_sync", 1);
    d.assign("fetch_sync", d.opEq(d.var("f_pc"), d.var("pc")));
    return d;
}

synth::AbsFunc
makeAlpha()
{
    // §4.2's three-stage abstraction function.
    synth::AbsFunc a;
    using synth::Effect;
    using synth::MapType;
    a.map("pc", "pc", MapType::Register,
          {{Effect::Read, 1}, {Effect::Write, 2}});
    a.map("GPR", "rf", MapType::Memory,
          {{Effect::Read, 2}, {Effect::Write, 3}});
    a.map("mem", "d_mem", MapType::Memory,
          {{Effect::Read, 3}, {Effect::Write, 3}});
    a.mapFetch("mem", "i_mem", {{Effect::Read, 1}}, "inst2");
    a.withCycles(3);
    a.assume("instruction_valid", 1);
    a.assume("stage1_bubble", 1);
    a.assume("stage2_bubble", 1);
    // Fetch synchronization: the speculating fetch pc equals the
    // architectural pc at the start of the window. Expressed as an
    // initial-state alias so term sharing survives (DESIGN.md §3).
    a.aliasInit("pc", "f_pc");
    return a;
}

} // namespace

CaseStudy
makeCryptoCore()
{
    return CaseStudy(makeSpec(), makeSketch(), makeAlpha());
}

void
completeCryptoCoreByHand(oyster::Design &d)
{
    using oyster::muxChain;
    auto ctl = [&](const std::string &name, ExprRef e) {
        d.convertHoleToWire(name);
        d.assign(name, e, /*generated=*/true);
    };
    auto opIs = [&](uint64_t v) {
        return d.opEq(d.var("opcode"), d.lit(7, v));
    };
    auto f3Is = [&](uint64_t v) {
        return d.opEq(d.var("funct3"), d.lit(3, v));
    };
    auto f7Is = [&](uint64_t v) {
        return d.opEq(d.var("funct7"), d.lit(7, v));
    };
    auto aop = [&](uint64_t v) { return d.lit(5, v); };

    d.addWire("is_lui", 1);
    d.assign("is_lui", opIs(0x37), true);
    d.addWire("is_jal", 1);
    d.assign("is_jal", opIs(0x6f), true);
    d.addWire("is_lw", 1);
    d.assign("is_lw", opIs(0x03), true);
    d.addWire("is_sw", 1);
    d.assign("is_sw", opIs(0x23), true);
    d.addWire("is_opimm", 1);
    d.assign("is_opimm", opIs(0x13), true);
    d.addWire("is_op", 1);
    d.assign("is_op", opIs(0x33), true);
    d.addWire("is_cmov", 1);
    d.assign("is_cmov", opIs(0x0b), true);

    ctl("imm_sel",
        muxChain(d,
                 {{d.var("is_sw"), d.lit(3, rvdp::immS)},
                  {d.var("is_lui"), d.lit(3, rvdp::immU)},
                  {d.var("is_jal"), d.lit(3, rvdp::immJ)}},
                 d.lit(3, rvdp::immI)));
    ctl("alu_imm",
        d.opNot(d.opOr(d.var("is_op"), d.var("is_cmov"))));
    ExprRef imm_alu = muxChain(
        d,
        {{f3Is(0), aop(aluADD)},
         {f3Is(4), aop(aluXOR)},
         {f3Is(6), aop(aluOR)},
         {f3Is(7), aop(aluAND)},
         {f3Is(1), aop(aluSLL)}},
        d.opIte(f7Is(0x30), aop(aluROR), aop(aluSRL)));
    ExprRef op_alu = muxChain(
        d,
        {{f3Is(0), d.opIte(f7Is(0x20), aop(aluSUB), aop(aluADD))},
         {f3Is(4), aop(aluXOR)},
         {f3Is(6), aop(aluOR)}},
        aop(aluAND));
    ctl("alu_op", muxChain(d,
                           {{d.var("is_lui"), aop(aluCOPY2)},
                            {d.var("is_opimm"), imm_alu},
                            {d.var("is_op"), op_alu}},
                           aop(aluADD)));
    ctl("cmov_sel", d.var("is_cmov"));
    ctl("mem_read", d.var("is_lw"));
    ctl("mem_write", d.var("is_sw"));
    ctl("reg_write", d.opNot(d.var("is_sw")));
    ctl("jump", d.var("is_jal"));

    d.sortStatements();
    d.validate(/*allow_holes=*/false);
}

} // namespace owl::designs
