#include "designs/accumulator.h"

#include "oyster/builder.h"

namespace owl::designs
{

using namespace owl::ila;
using oyster::ExprRef;

namespace
{

Ila
makeSpec()
{
    // Transliteration of the §2.3 CreateAccIla listing (val widened to
    // 8 bits so `acc + val` is well-typed).
    Ila ila("acc_ila");
    auto reset = ila.NewBvInput("reset", 1);
    auto go = ila.NewBvInput("go", 1);
    auto stop = ila.NewBvInput("stop", 1);
    auto val = ila.NewBvInput("val", 8);
    auto acc = ila.NewBvState("acc", 8);
    auto state = ila.NewBvState("state", 2);
    auto c1 = [&](uint64_t v) { return BvConst(ila.ctx(), v, 1); };
    auto c2 = [&](uint64_t v) { return BvConst(ila.ctx(), v, 2); };

    auto &reset_instr = ila.NewInstr("reset_instr");
    reset_instr.SetDecode(state == c2(accSTOP) && reset == c1(1));
    reset_instr.SetUpdate(acc, BvConst(ila.ctx(), 0, 8));
    reset_instr.SetUpdate(state, c2(accRESET));

    auto &go_instr = ila.NewInstr("go_instr");
    go_instr.SetDecode((state == c2(accRESET) && go == c1(1)) ||
                       (state == c2(accGO) && stop == c1(0)));
    go_instr.SetUpdate(acc, acc + val);
    go_instr.SetUpdate(state, c2(accGO));

    auto &stop_instr = ila.NewInstr("stop_instr");
    stop_instr.SetDecode(state == c2(accGO) && stop == c1(1));
    stop_instr.SetUpdate(acc, acc);
    stop_instr.SetUpdate(state, c2(accSTOP));

    return ila;
}

oyster::Design
makeSketch()
{
    // The §2.3 datapath pseudocode:
    //
    //   state := ??
    //   with state:
    //     ?? -> acc := 0
    //     ?? -> acc := acc + val
    //     ?? -> acc := acc
    //   out := acc
    //
    // `fsm` is the state-selection wire (a hole), the three `with`
    // arms compare it against encoding holes, and `st_next` is the
    // transition target for the architectural state register.
    oyster::Design d("accumulator");
    d.addInput("reset", 1);
    d.addInput("go", 1);
    d.addInput("stop", 1);
    d.addInput("val", 8);
    d.addRegister("acc", 8);
    d.addRegister("st", 2);
    d.addOutput("out", 8);

    d.addHole("fsm", 2, {"st", "reset", "go", "stop"});
    d.addHole("enc_reset", 2, {});
    d.addHole("enc_go", 2, {});
    d.addHole("enc_stop", 2, {});
    d.addHole("st_next", 2, {"st", "reset", "go", "stop"});

    ExprRef acc = d.var("acc");
    ExprRef upd = muxChain(
        d,
        {{d.opEq(d.var("fsm"), d.var("enc_reset")), d.lit(8, 0)},
         {d.opEq(d.var("fsm"), d.var("enc_go")),
          d.opAdd(acc, d.var("val"))},
         {d.opEq(d.var("fsm"), d.var("enc_stop")), acc}},
        acc);
    d.assign("acc", upd);
    d.assign("st", d.var("st_next"));
    d.assign("out", acc);
    return d;
}

synth::AbsFunc
makeAlpha()
{
    synth::AbsFunc a;
    using synth::Effect;
    using synth::MapType;
    a.map("reset", "reset", MapType::Input, {{Effect::Read, 1}});
    a.map("go", "go", MapType::Input, {{Effect::Read, 1}});
    a.map("stop", "stop", MapType::Input, {{Effect::Read, 1}});
    a.map("val", "val", MapType::Input, {{Effect::Read, 1}});
    a.map("acc", "acc", MapType::Register,
          {{Effect::Read, 1}, {Effect::Write, 1}});
    a.map("state", "st", MapType::Register,
          {{Effect::Read, 1}, {Effect::Write, 1}});
    a.withCycles(1);
    return a;
}

} // namespace

CaseStudy
makeAccumulator()
{
    return CaseStudy(makeSpec(), makeSketch(), makeAlpha());
}

} // namespace owl::designs
