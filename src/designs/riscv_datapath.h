/**
 * @file
 * Shared datapath building blocks for the RISC-V sketches: decode
 * field extraction, immediate formats, the ALU (base + Zbkb + Zbkc
 * functional units), branch comparison, and the load/store byte
 * lane logic. Used by the single-cycle core, the two-stage core and
 * the constant-time crypto core so the three sketches stay
 * structurally consistent (and consistent with the ILA spec, which
 * maximizes term sharing during synthesis).
 */

#ifndef OWL_DESIGNS_RISCV_DATAPATH_H
#define OWL_DESIGNS_RISCV_DATAPATH_H

#include "designs/riscv_spec.h"
#include "oyster/ir.h"

namespace owl::designs::rvdp
{

using oyster::Design;
using oyster::ExprRef;

/** ALU function encodings (5-bit alu_op control signal). */
enum AluOp : uint64_t
{
    aluADD = 0,
    aluSUB,
    aluSLL,
    aluSLT,
    aluSLTU,
    aluXOR,
    aluSRL,
    aluSRA,
    aluOR,
    aluAND,
    aluCOPY2,  ///< pass operand B through (LUI)
    aluROL,
    aluROR,
    aluANDN,
    aluORN,
    aluXNOR,
    aluREV8,
    aluBREV8,
    aluZIP,
    aluUNZIP,
    aluPACK,
    aluPACKH,
    aluCLMUL,
    aluCLMULH,
};

/** Immediate-format selector encodings (3-bit imm_sel signal). */
enum ImmSel : uint64_t
{
    immI = 0,
    immS,
    immB,
    immU,
    immJ,
};

/** Branch comparison encodings (2-bit branch_cmp signal). */
enum BranchCmp : uint64_t
{
    cmpEQ = 0,
    cmpLT,
    cmpLTU,
};

/** Memory access size encodings (2-bit mask_mode signal). */
enum MaskMode : uint64_t
{
    maskByte = 0,
    maskHalf,
    maskWord,
};

/** Decoded instruction fields. */
struct DecodeFields
{
    ExprRef opcode, rd, funct3, rs1, rs2, funct7;
    ExprRef imm_i, imm_s, imm_b, imm_u, imm_j;
};

/** Extract all decode fields and immediates from `inst` (32-bit). */
DecodeFields decodeFields(Design &d, ExprRef inst);

/** Immediate mux over the five formats. */
ExprRef immediateMux(Design &d, const DecodeFields &f, ExprRef imm_sel);

/**
 * The ALU: a mux over the functions enabled by the variant. Operand B
 * supplies both the second value and (its low 5 bits) the shift
 * amount.
 */
ExprRef alu(Design &d, RiscvVariant variant, ExprRef op5, ExprRef a,
            ExprRef b);

/** Branch unit: cmp-select + polarity. */
ExprRef branchTaken(Design &d, ExprRef branch_en, ExprRef branch_cmp,
                    ExprRef branch_neg, ExprRef a, ExprRef b);

/**
 * Load lane select: shift the fetched word right by the byte offset
 * and extend per mask_mode/sign.
 */
ExprRef loadValue(Design &d, ExprRef word, ExprRef offset2,
                  ExprRef mask_mode, ExprRef sign_ext);

/** Store merge: read-modify-write of the masked field. */
ExprRef storeMerge(Design &d, ExprRef old_word, ExprRef store_val,
                   ExprRef offset2, ExprRef mask_mode);

} // namespace owl::designs::rvdp

#endif // OWL_DESIGNS_RISCV_DATAPATH_H
