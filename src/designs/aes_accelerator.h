/**
 * @file
 * The AES-128 hardware accelerator (paper §4.3) — the FSM-style
 * control case study. The ILA models the encryption as three
 * "instructions" (first / intermediate / final round) decoded by the
 * architectural round counter; the datapath sketch computes one round
 * per cycle and leaves the FSM state selection, the per-arm state
 * encodings, and the arm comparison structure as holes.
 *
 * Round convention (documented deviation from the paper's listing,
 * which uses `(round > 0) & (round < 9)`): FirstRound at round == 0
 * performs the initial AddRoundKey; IntermediateRound covers rounds
 * 1..9 (nine full rounds); FinalRound at round == 10 omits
 * MixColumns. This yields FIPS-197-correct AES-128, validated against
 * the Appendix B vectors.
 */

#ifndef OWL_DESIGNS_AES_ACCELERATOR_H
#define OWL_DESIGNS_AES_ACCELERATOR_H

#include "designs/case_study.h"

namespace owl::designs
{

/** Build just the ILA specification. */
ila::Ila makeAesSpec();

/** Build just the datapath sketch (with FSM holes). */
oyster::Design makeAesSketch();

/** Build the AES accelerator (spec, sketch, α). */
CaseStudy makeAesAccelerator();

} // namespace owl::designs

#endif // OWL_DESIGNS_AES_ACCELERATOR_H
