/**
 * @file
 * The AES-128 accelerator datapath sketch (paper §4.3): a multi-cycle
 * datapath computing one round per cycle, with FSM-style control left
 * as holes — the state-selection wire (`state <<= ??`) and the three
 * arm encodings (`with state == ??`).
 */

#include "designs/aes_accelerator.h"
#include "designs/aes_round.h"
#include "designs/aes_tables.h"
#include "oyster/builder.h"

namespace owl::designs
{

using oyster::Design;
using oyster::ExprRef;
using oyster::muxChain;

namespace
{

/** aes_round.h builder over Oyster expressions. */
struct OysterAesBuilder
{
    using Expr = ExprRef;
    Design &d;

    Expr ext(Expr x, int h, int l) { return d.opExtract(x, h, l); }
    Expr cat(Expr h, Expr l) { return d.opConcat(h, l); }
    Expr x_(Expr a, Expr b) { return d.opXor(a, b); }
    Expr ite(Expr c, Expr t, Expr e) { return d.opIte(c, t, e); }
    Expr c(int w, uint64_t v) { return d.lit(w, v); }
    Expr shl1(Expr x) { return d.opShl(x, d.lit(8, 1)); }
    Expr sbox(Expr i) { return d.opRead("sbox", i); }
    Expr rcon(Expr i) { return d.opRead("rcon", i); }
};

} // namespace

oyster::Design
makeAesSketch()
{
    Design d("aes_accelerator");
    d.addInput("key_in", 128);
    d.addInput("plaintext", 128);
    d.addRegister("round", 4);
    d.addRegister("round_key", 128);
    d.addRegister("ciphertext", 128);
    d.addRom("sbox", 8, 8, aesSboxEntries());
    d.addRom("rcon", 4, 8, aesRconEntries());
    d.addOutput("ct_out", 128);

    // FSM control holes: the state-selection logic and the per-arm
    // state encodings.
    d.addHole("state_sel", 2, {"round"});
    d.addHole("enc_first", 2, {});
    d.addHole("enc_mid", 2, {});
    d.addHole("enc_final", 2, {});

    d.addWire("state", 2);
    d.assign("state", d.var("state_sel"));
    d.addWire("in_first", 1);
    d.assign("in_first", d.opEq(d.var("state"), d.var("enc_first")));
    d.addWire("in_mid", 1);
    d.assign("in_mid", d.opEq(d.var("state"), d.var("enc_mid")));
    d.addWire("in_final", 1);
    d.assign("in_final", d.opEq(d.var("state"), d.var("enc_final")));

    OysterAesBuilder b{d};
    ExprRef ct = d.var("ciphertext");
    ExprRef rk = d.var("round_key");
    ExprRef round = d.var("round");
    ExprRef round1 = d.opAdd(round, d.lit(4, 1));

    // Per-arm datapath computation (one AES round per cycle).
    d.addWire("first_ct", 128);
    d.assign("first_ct", d.opXor(d.var("plaintext"), d.var("key_in")));
    d.addWire("first_rk", 128);
    d.assign("first_rk", aes::keyExpand(b, d.var("key_in"),
                                        d.lit(4, 1)));
    d.addWire("mid_ct", 128);
    d.assign("mid_ct", aes::cipherUpdateMidRound(b, ct, rk));
    d.addWire("mid_rk", 128);
    d.assign("mid_rk", aes::keyExpand(b, rk, round1));
    d.addWire("final_ct", 128);
    d.assign("final_ct", aes::cipherUpdateFinalRound(b, ct, rk));

    // Conditional state updates, selected by the FSM arms.
    d.assign("ciphertext",
             muxChain(d,
                      {{d.var("in_first"), d.var("first_ct")},
                       {d.var("in_mid"), d.var("mid_ct")},
                       {d.var("in_final"), d.var("final_ct")}},
                      ct));
    d.assign("round_key",
             muxChain(d,
                      {{d.var("in_first"), d.var("first_rk")},
                       {d.var("in_mid"), d.var("mid_rk")}},
                      rk));
    d.assign("round", muxChain(d,
                               {{d.var("in_first"), d.lit(4, 1)},
                                {d.var("in_mid"), round1},
                                {d.var("in_final"), round1}},
                               round));
    d.assign("ct_out", ct);
    return d;
}

namespace
{

synth::AbsFunc
makeAlpha()
{
    // §4.3: not pipelined — every effect at time step 1.
    synth::AbsFunc a;
    using synth::Effect;
    using synth::MapType;
    a.map("key_in", "key_in", MapType::Input, {{Effect::Read, 1}});
    a.map("plaintext", "plaintext", MapType::Input,
          {{Effect::Read, 1}});
    a.map("round", "round", MapType::Register,
          {{Effect::Read, 1}, {Effect::Write, 1}});
    a.map("round_key", "round_key", MapType::Register,
          {{Effect::Read, 1}, {Effect::Write, 1}});
    a.map("ciphertext", "ciphertext", MapType::Register,
          {{Effect::Read, 1}, {Effect::Write, 1}});
    a.withCycles(1);
    return a;
}

} // namespace

CaseStudy
makeAesAccelerator()
{
    return CaseStudy(makeAesSpec(), makeAesSketch(), makeAlpha());
}

} // namespace owl::designs
