#include "designs/riscv_single_cycle.h"

#include "designs/riscv_datapath.h"
#include "oyster/builder.h"

namespace owl::designs
{

using namespace rvdp;
using oyster::Design;
using oyster::ExprRef;

namespace
{

Design
makeSketch(RiscvVariant variant)
{
    Design d(std::string("riscv_single_cycle_") +
             riscvVariantToken(variant));
    d.addRegister("pc", 32);
    d.addMemory("i_mem", 30, 32);
    d.addMemory("d_mem", 30, 32);
    d.addMemory("rf", 5, 32);

    // Fetch + decode (paper §4.1.1 sketch):
    //   instruction = fetch(i_mem, pc)
    //   opcode, funct3, funct7, imm = decode(instruction)
    d.addWire("instruction", 32);
    d.assign("instruction",
             d.opRead("i_mem", d.opExtract(d.var("pc"), 31, 2)));
    DecodeFields f = decodeFields(d, d.var("instruction"));
    d.addWire("opcode", 7);
    d.assign("opcode", f.opcode);
    d.addWire("funct3", 3);
    d.assign("funct3", f.funct3);
    d.addWire("funct7", 7);
    d.assign("funct7", f.funct7);
    d.addWire("rd", 5);
    d.assign("rd", f.rd);

    // Control points: every signal below is a hole over the decoded
    // instruction fields.
    std::vector<std::string> deps = {"opcode", "funct3", "funct7"};
    d.addHole("imm_sel", 3, deps);
    d.addHole("alu_pc", 1, deps);    // operand 1: rs1 or pc
    d.addHole("alu_imm", 1, deps);   // operand 2: rs2 or imm
    d.addHole("alu_op", 5, deps);
    d.addHole("mem_read", 1, deps);
    d.addHole("mem_write", 1, deps);
    d.addHole("mask_mode", 2, deps);
    d.addHole("mem_sign_ext", 1, deps);
    d.addHole("reg_write", 1, deps);
    d.addHole("jump", 1, deps);
    d.addHole("jalr_sel", 1, deps);  // target base: pc or rs1
    d.addHole("branch_en", 1, deps);
    d.addHole("branch_cmp", 2, deps);
    d.addHole("branch_neg", 1, deps);

    // Register file read.
    d.addWire("rs1_val", 32);
    d.assign("rs1_val", d.opRead("rf", f.rs1));
    d.addWire("rs2_val", 32);
    d.assign("rs2_val", d.opRead("rf", f.rs2));

    // Immediate select and ALU.
    d.addWire("imm", 32);
    d.assign("imm", immediateMux(d, f, d.var("imm_sel")));
    d.addWire("alu_in1", 32);
    d.assign("alu_in1",
             d.opIte(d.var("alu_pc"), d.var("pc"), d.var("rs1_val")));
    d.addWire("alu_in2", 32);
    d.assign("alu_in2",
             d.opIte(d.var("alu_imm"), d.var("imm"), d.var("rs2_val")));
    d.addWire("alu_out", 32);
    d.assign("alu_out", alu(d, variant, d.var("alu_op"),
                            d.var("alu_in1"), d.var("alu_in2")));

    // Data memory: word-addressed with byte-lane merge.
    d.addWire("mem_word_addr", 30);
    d.assign("mem_word_addr", d.opExtract(d.var("alu_out"), 31, 2));
    d.addWire("mem_offset", 2);
    d.assign("mem_offset", d.opExtract(d.var("alu_out"), 1, 0));
    d.addWire("mem_rdata", 32);
    d.assign("mem_rdata", d.opRead("d_mem", d.var("mem_word_addr")));
    d.addWire("loaded", 32);
    d.assign("loaded",
             loadValue(d, d.var("mem_rdata"), d.var("mem_offset"),
                       d.var("mask_mode"), d.var("mem_sign_ext")));
    d.addWire("store_word", 32);
    d.assign("store_word",
             storeMerge(d, d.var("mem_rdata"), d.var("rs2_val"),
                        d.var("mem_offset"), d.var("mask_mode")));
    d.memWrite("d_mem", d.var("mem_word_addr"), d.var("store_word"),
               d.var("mem_write"));

    // Branch unit and next-pc.
    d.addWire("taken", 1);
    d.assign("taken",
             branchTaken(d, d.var("branch_en"), d.var("branch_cmp"),
                         d.var("branch_neg"), d.var("rs1_val"),
                         d.var("rs2_val")));
    d.addWire("pc4", 32);
    d.assign("pc4", d.opAdd(d.var("pc"), d.lit(32, 4)));
    d.addWire("target", 32);
    d.assign("target",
             d.opIte(d.var("jalr_sel"),
                     d.opAnd(d.opAdd(d.var("rs1_val"), f.imm_i),
                             d.lit(32, 0xfffffffe)),
                     d.opAdd(d.var("pc"), d.var("imm"))));
    d.assign("pc", d.opIte(d.opOr(d.var("jump"), d.var("taken")),
                           d.var("target"), d.var("pc4")));

    // Register file write back (Figure 7's wb structure: memory data
    // for loads, pc+4 for jumps, else the ALU result). Writes to x0
    // are suppressed in the datapath.
    d.addWire("wb", 32);
    d.assign("wb", d.opIte(d.var("mem_read"), d.var("loaded"),
                           d.opIte(d.var("jump"), d.var("pc4"),
                                   d.var("alu_out"))));
    d.memWrite("rf", d.var("rd"), d.var("wb"),
               d.opAnd(d.var("reg_write"),
                       d.opNe(d.var("rd"), d.lit(5, 0))));
    return d;
}

synth::AbsFunc
makeAlpha()
{
    // §4.1.1: no special timing; all effects at time step 1.
    synth::AbsFunc a;
    using synth::Effect;
    using synth::MapType;
    a.map("pc", "pc", MapType::Register,
          {{Effect::Read, 1}, {Effect::Write, 1}});
    a.map("GPR", "rf", MapType::Memory,
          {{Effect::Read, 1}, {Effect::Write, 1}});
    a.map("mem", "d_mem", MapType::Memory,
          {{Effect::Read, 1}, {Effect::Write, 1}});
    a.mapFetch("mem", "i_mem", {{Effect::Read, 1}}, "instruction");
    a.withCycles(1);
    return a;
}

} // namespace

CaseStudy
makeRiscvSingleCycle(RiscvVariant variant)
{
    return CaseStudy(makeRiscvSpec(variant), makeSketch(variant),
                     makeAlpha());
}

} // namespace owl::designs
