/**
 * @file
 * Hand-written reference control logic for the single-cycle RISC-V
 * core — the baseline the paper compares generated control against in
 * Table 2 and §5.2. completeSingleCycleByHand() fills the same sketch
 * holes a synthesis run would, but with compact human-authored
 * decode logic.
 */

#ifndef OWL_DESIGNS_RISCV_REFERENCE_CONTROL_H
#define OWL_DESIGNS_RISCV_REFERENCE_CONTROL_H

#include "designs/riscv_spec.h"
#include "oyster/ir.h"

namespace owl::designs
{

/**
 * Fill the single-cycle sketch's holes with hand-written control
 * logic. The statements are flagged as control logic so LoC counting
 * sees the same scope as for generated control.
 */
void completeSingleCycleByHand(oyster::Design &sketch,
                               RiscvVariant variant);

} // namespace owl::designs

#endif // OWL_DESIGNS_RISCV_REFERENCE_CONTROL_H
