/**
 * @file
 * AES-128 constant tables (FIPS-197) and an independent software
 * implementation used as the oracle for the accelerator tests.
 */

#ifndef OWL_DESIGNS_AES_TABLES_H
#define OWL_DESIGNS_AES_TABLES_H

#include <cstdint>
#include <vector>

#include "base/bitvec.h"

namespace owl::designs
{

/** The AES S-box. */
extern const uint8_t aesSbox[256];
/** Round constants rcon[1..10] (index 0 unused). */
extern const uint8_t aesRcon[11];

/** S-box as 8-bit BitVec entries (for ROMs / MemConst). */
std::vector<BitVec> aesSboxEntries();
/** rcon as 8-bit BitVec entries indexed by a 4-bit round number. */
std::vector<BitVec> aesRconEntries();

/**
 * Reference software AES-128 block encryption (independent of the
 * ILA/Oyster machinery; straight FIPS-197).
 */
void aesEncryptBlock(const uint8_t key[16], const uint8_t in[16],
                     uint8_t out[16]);

/**
 * Pack 16 bytes into a 128-bit vector with byte 0 in bits [7:0] —
 * the state layout both the ILA spec and the sketch use.
 */
BitVec aesPackBlock(const uint8_t bytes[16]);
/** Inverse of aesPackBlock. */
void aesUnpackBlock(const BitVec &v, uint8_t bytes[16]);

} // namespace owl::designs

#endif // OWL_DESIGNS_AES_TABLES_H
