/**
 * @file
 * The bespoke constant-time cryptography core (paper §4.2).
 *
 * The ISA is the RISC-V subset needed to execute SHA-256 with all
 * conditional branches removed, plus a custom conditional move:
 *
 *   CMOV rd, rs1, rs2:  rd := (rs1 != 0) ? rs2 : rd
 *
 * (R-type on the custom-0 opcode 0x0b). Because no instruction's
 * latency depends on data, programs execute in a number of cycles
 * independent of their input values — the property §5.2 measures.
 *
 * The datapath is a three-stage pipeline: (1) instruction fetch with
 * a speculating fetch pc, (2) decode + execute (pc resolves here;
 * taken jumps squash the wrong-path fetch), (3) memory + write back.
 * The abstraction function assumes, at cycle 1, that the in-flight
 * pipeline slots hold bubbles and that the fetch pc agrees with the
 * architectural pc — these wires jointly play the role of the paper's
 * `instruction_valid` assumption for control hazards.
 */

#ifndef OWL_DESIGNS_CRYPTO_CORE_H
#define OWL_DESIGNS_CRYPTO_CORE_H

#include "designs/case_study.h"

namespace owl::designs
{

/** Number of instructions in the crypto-core ISA. */
inline constexpr int cryptoIsaInstrCount = 17;

/** Build the constant-time crypto core (spec, sketch, α). */
CaseStudy makeCryptoCore();

/**
 * Fill the crypto-core sketch's holes with hand-written control — the
 * reference the paper compares cycle counts against in §5.2.
 */
void completeCryptoCoreByHand(oyster::Design &sketch);

} // namespace owl::designs

#endif // OWL_DESIGNS_CRYPTO_CORE_H
