#include "designs/riscv_datapath.h"

#include "oyster/builder.h"

namespace owl::designs::rvdp
{

using oyster::muxChain;

DecodeFields
decodeFields(Design &d, ExprRef inst)
{
    DecodeFields f;
    f.opcode = d.opExtract(inst, 6, 0);
    f.rd = d.opExtract(inst, 11, 7);
    f.funct3 = d.opExtract(inst, 14, 12);
    f.rs1 = d.opExtract(inst, 19, 15);
    f.rs2 = d.opExtract(inst, 24, 20);
    f.funct7 = d.opExtract(inst, 31, 25);

    f.imm_i = d.opSExt(d.opExtract(inst, 31, 20), 32);
    f.imm_s = d.opSExt(
        d.opConcat(d.opExtract(inst, 31, 25), d.opExtract(inst, 11, 7)),
        32);
    f.imm_b = d.opSExt(
        d.opConcat(d.opConcat(d.opExtract(inst, 31, 31),
                              d.opExtract(inst, 7, 7)),
                   d.opConcat(d.opExtract(inst, 30, 25),
                              d.opConcat(d.opExtract(inst, 11, 8),
                                         d.lit(1, 0)))),
        32);
    f.imm_u = d.opConcat(d.opExtract(inst, 31, 12), d.lit(12, 0));
    f.imm_j = d.opSExt(
        d.opConcat(d.opConcat(d.opExtract(inst, 31, 31),
                              d.opExtract(inst, 19, 12)),
                   d.opConcat(d.opExtract(inst, 20, 20),
                              d.opConcat(d.opExtract(inst, 30, 21),
                                         d.lit(1, 0)))),
        32);
    return f;
}

ExprRef
immediateMux(Design &d, const DecodeFields &f, ExprRef imm_sel)
{
    auto is = [&](uint64_t v) {
        return d.opEq(imm_sel, d.lit(3, v));
    };
    return muxChain(d,
                    {{is(immI), f.imm_i},
                     {is(immS), f.imm_s},
                     {is(immB), f.imm_b},
                     {is(immU), f.imm_u}},
                    f.imm_j);
}

namespace
{

/** rev8: byte reversal — mirrors SpecBuilder::rev8. */
ExprRef
rev8Expr(Design &d, ExprRef x)
{
    return d.opConcat(
        d.opExtract(x, 7, 0),
        d.opConcat(d.opExtract(x, 15, 8),
                   d.opConcat(d.opExtract(x, 23, 16),
                              d.opExtract(x, 31, 24))));
}

/** brev8: reverse bits within each byte. */
ExprRef
brev8Expr(Design &d, ExprRef x)
{
    ExprRef out = d.opExtract(x, 7, 7);
    bool first = true;
    for (int byte = 0; byte < 4; byte++) {
        for (int bit = 0; bit < 8; bit++) {
            int dst = byte * 8 + (7 - bit);
            if (first) {
                out = d.opExtract(x, dst, dst);
                first = false;
            } else {
                out = d.opConcat(d.opExtract(x, dst, dst), out);
            }
        }
    }
    return out;
}

ExprRef
zipExpr(Design &d, ExprRef x)
{
    ExprRef out = d.opExtract(x, 0, 0);
    for (int i = 0; i < 32; i++) {
        int src = (i % 2 == 0) ? i / 2 : i / 2 + 16;
        ExprRef bit = d.opExtract(x, src, src);
        out = (i == 0) ? bit : d.opConcat(bit, out);
    }
    return out;
}

ExprRef
unzipExpr(Design &d, ExprRef x)
{
    ExprRef out = d.opExtract(x, 0, 0);
    for (int i = 0; i < 32; i++) {
        int src = (i < 16) ? 2 * i : 2 * (i - 16) + 1;
        ExprRef bit = d.opExtract(x, src, src);
        out = (i == 0) ? bit : d.opConcat(bit, out);
    }
    return out;
}

} // namespace

ExprRef
alu(Design &d, RiscvVariant variant, ExprRef op5, ExprRef a, ExprRef b)
{
    ExprRef sh = d.opZExt(d.opExtract(b, 4, 0), 32);
    auto is = [&](uint64_t v) { return d.opEq(op5, d.lit(5, v)); };
    std::vector<oyster::CondArm> arms = {
        {is(aluADD), d.opAdd(a, b)},
        {is(aluSUB), d.opSub(a, b)},
        {is(aluSLL), d.opShl(a, sh)},
        {is(aluSLT), d.opZExt(d.opSlt(a, b), 32)},
        {is(aluSLTU), d.opZExt(d.opUlt(a, b), 32)},
        {is(aluXOR), d.opXor(a, b)},
        {is(aluSRL), d.opLshr(a, sh)},
        {is(aluSRA), d.opAshr(a, sh)},
        {is(aluOR), d.opOr(a, b)},
        {is(aluAND), d.opAnd(a, b)},
    };
    if (variant == RiscvVariant::RV32I_Zbkb ||
        variant == RiscvVariant::RV32I_Zbkc) {
        arms.push_back({is(aluROL), d.opRol(a, sh)});
        arms.push_back({is(aluROR), d.opRor(a, sh)});
        arms.push_back({is(aluANDN), d.opAnd(a, d.opNot(b))});
        arms.push_back({is(aluORN), d.opOr(a, d.opNot(b))});
        arms.push_back({is(aluXNOR), d.opNot(d.opXor(a, b))});
        arms.push_back({is(aluREV8), rev8Expr(d, a)});
        arms.push_back({is(aluBREV8), brev8Expr(d, a)});
        arms.push_back({is(aluZIP), zipExpr(d, a)});
        arms.push_back({is(aluUNZIP), unzipExpr(d, a)});
        arms.push_back(
            {is(aluPACK),
             d.opConcat(d.opExtract(b, 15, 0), d.opExtract(a, 15, 0))});
        arms.push_back(
            {is(aluPACKH),
             d.opZExt(d.opConcat(d.opExtract(b, 7, 0),
                                 d.opExtract(a, 7, 0)),
                      32)});
    }
    if (variant == RiscvVariant::RV32I_Zbkc) {
        arms.push_back({is(aluCLMUL), d.opClmul(a, b)});
        arms.push_back({is(aluCLMULH), d.opClmulh(a, b)});
    }
    // COPY2 (LUI) is the default arm.
    return muxChain(d, arms, b);
}

ExprRef
branchTaken(Design &d, ExprRef branch_en, ExprRef branch_cmp,
            ExprRef branch_neg, ExprRef a, ExprRef b)
{
    ExprRef cmp = muxChain(
        d,
        {{d.opEq(branch_cmp, d.lit(2, cmpEQ)), d.opEq(a, b)},
         {d.opEq(branch_cmp, d.lit(2, cmpLT)), d.opSlt(a, b)}},
        d.opUlt(a, b));
    return d.opAnd(branch_en, d.opXor(cmp, branch_neg));
}

ExprRef
loadValue(Design &d, ExprRef word, ExprRef offset2, ExprRef mask_mode,
          ExprRef sign_ext)
{
    ExprRef off5 = d.opZExt(d.opConcat(offset2, d.lit(3, 0)), 32);
    ExprRef shifted = d.opLshr(word, off5);
    ExprRef b = d.opExtract(shifted, 7, 0);
    ExprRef h = d.opExtract(shifted, 15, 0);
    ExprRef byte_v = d.opIte(sign_ext, d.opSExt(b, 32),
                             d.opZExt(b, 32));
    ExprRef half_v = d.opIte(sign_ext, d.opSExt(h, 32),
                             d.opZExt(h, 32));
    return muxChain(
        d,
        {{d.opEq(mask_mode, d.lit(2, maskByte)), byte_v},
         {d.opEq(mask_mode, d.lit(2, maskHalf)), half_v}},
        shifted);
}

ExprRef
storeMerge(Design &d, ExprRef old_word, ExprRef store_val,
           ExprRef offset2, ExprRef mask_mode)
{
    ExprRef off5 = d.opZExt(d.opConcat(offset2, d.lit(3, 0)), 32);
    ExprRef mask = muxChain(
        d,
        {{d.opEq(mask_mode, d.lit(2, maskByte)), d.lit(32, 0xff)},
         {d.opEq(mask_mode, d.lit(2, maskHalf)), d.lit(32, 0xffff)}},
        d.lit(BitVec::ones(32)));
    ExprRef kept = d.opAnd(old_word, d.opNot(d.opShl(mask, off5)));
    ExprRef field = d.opShl(d.opAnd(store_val, mask), off5);
    return d.opOr(kept, field);
}

} // namespace owl::designs::rvdp
