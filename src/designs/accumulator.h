/**
 * @file
 * The accumulator machine of paper §2.3 — the FSM-style control
 * example. The specification has three instructions (reset / go /
 * stop) predicated on the architectural `state`; the datapath sketch
 * implements the accumulator updates and leaves the FSM state
 * selection, arm encodings and transition target as holes.
 */

#ifndef OWL_DESIGNS_ACCUMULATOR_H
#define OWL_DESIGNS_ACCUMULATOR_H

#include "designs/case_study.h"

namespace owl::designs
{

/** Spec-level state encodings (§2.3 Figure 3). */
inline constexpr uint64_t accRESET = 0;
inline constexpr uint64_t accGO = 1;
inline constexpr uint64_t accSTOP = 2;

/** Build the accumulator spec, sketch and abstraction function. */
CaseStudy makeAccumulator();

} // namespace owl::designs

#endif // OWL_DESIGNS_ACCUMULATOR_H
