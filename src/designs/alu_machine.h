/**
 * @file
 * The ALU machine of paper §2.2 — the instruction-decoder control
 * example, implemented as the three-stage pipeline of Figure 2. The
 * abstraction function demonstrates multi-cycle read/write timing and
 * a pipeline-empty assumption (the same mechanism the constant-time
 * crypto core uses for instruction_valid).
 */

#ifndef OWL_DESIGNS_ALU_MACHINE_H
#define OWL_DESIGNS_ALU_MACHINE_H

#include "designs/case_study.h"

namespace owl::designs
{

/** ALU function encodings used by the sketch's execute stage. */
inline constexpr uint64_t aluADD = 0;
inline constexpr uint64_t aluXOR = 1;
inline constexpr uint64_t aluAND = 2;
inline constexpr uint64_t aluSUB = 3;

/** Build the three-stage ALU machine (spec, sketch, α). */
CaseStudy makeAluMachine();

} // namespace owl::designs

#endif // OWL_DESIGNS_ALU_MACHINE_H
