/**
 * @file
 * Common container for the paper's case studies: an ILA specification,
 * a datapath sketch with holes, and the abstraction function binding
 * them (the three inputs of Figure 4).
 */

#ifndef OWL_DESIGNS_CASE_STUDY_H
#define OWL_DESIGNS_CASE_STUDY_H

#include "core/absfunc.h"
#include "ila/ila.h"
#include "oyster/ir.h"

namespace owl::designs
{

/** The three synthesis inputs for one case study. */
struct CaseStudy
{
    ila::Ila spec;
    oyster::Design sketch;
    synth::AbsFunc alpha;

    CaseStudy(ila::Ila s, oyster::Design d, synth::AbsFunc a)
        : spec(std::move(s)), sketch(std::move(d)),
          alpha(std::move(a))
    {
    }
};

} // namespace owl::designs

#endif // OWL_DESIGNS_CASE_STUDY_H
