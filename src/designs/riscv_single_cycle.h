/**
 * @file
 * The single-cycle embedded-class RISC-V core sketch (paper §4.1.1)
 * and its abstraction function. The control logic — immediate select,
 * ALU operand/function select, memory controls, register write, jump
 * and branch controls — is left as holes over the decoded fields.
 */

#ifndef OWL_DESIGNS_RISCV_SINGLE_CYCLE_H
#define OWL_DESIGNS_RISCV_SINGLE_CYCLE_H

#include "designs/case_study.h"
#include "designs/riscv_spec.h"

namespace owl::designs
{

/** Build the single-cycle core case study for a variant. */
CaseStudy makeRiscvSingleCycle(RiscvVariant variant);

} // namespace owl::designs

#endif // OWL_DESIGNS_RISCV_SINGLE_CYCLE_H
