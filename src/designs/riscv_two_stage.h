/**
 * @file
 * The two-stage pipelined RISC-V core (paper §4.1.2, "similar to
 * Ibex"). Stage 1: fetch, decode, execute and branch resolution
 * (including the pc update); stage 2: memory access and write back.
 * The specification and holes are identical to the single-cycle core;
 * only the datapath and the abstraction function's timing change —
 * exactly the design-iteration story the paper tells.
 *
 * The register file is read in stage 1 and written in stage 2 with no
 * forwarding (a software-interlocked pipeline): the per-instruction
 * correctness property synthesized here is the one the paper checks;
 * back-to-back dependent instructions need a bubble, as the tests do.
 */

#ifndef OWL_DESIGNS_RISCV_TWO_STAGE_H
#define OWL_DESIGNS_RISCV_TWO_STAGE_H

#include "designs/case_study.h"
#include "designs/riscv_spec.h"

namespace owl::designs
{

/** Build the two-stage core case study for a variant. */
CaseStudy makeRiscvTwoStage(RiscvVariant variant);

} // namespace owl::designs

#endif // OWL_DESIGNS_RISCV_TWO_STAGE_H
